//! The paper's headline experiment, end to end: replay a full day of trip
//! requests (432,327 at `--scale paper`, matching Sec. VI's Shanghai
//! workload) through the kinetic-tree fleet, streaming per-window metrics
//! to a JSON artifact and checkpointing so a multi-hour run survives
//! interruption and resumes **bit-identically**.
//!
//! ```text
//! cargo run --release -p rideshare-bench --bin paper_replay -- --scale paper
//! cargo run --release -p rideshare-bench --bin paper_replay -- \
//!     --scale quick --max-trips 2000 --verify-resume   # the CI gate
//! ```
//!
//! * The distance oracle comes from the persisted label store
//!   ([`rideshare_bench::store`]): the first run builds and saves the hub
//!   labels, every later run reloads them in seconds. `--require-reloaded`
//!   turns the reload into a hard gate (CI uses it to prove the
//!   build-once/reload-forever path is exercised).
//! * Every `--checkpoint-every` requests the full simulation state is
//!   written (atomically) to `--checkpoint`; an interrupted run restarted
//!   with the same arguments resumes from it automatically. `--fresh`
//!   ignores an existing checkpoint.
//! * `BENCH_replay.json` is rewritten at every window boundary, so the
//!   artifact is inspectable *while* the replay runs: served rate, waiting
//!   latency percentiles and occupancy per [`Scale::window_seconds`]
//!   window (24 windows at every scale; hours of the simulated day at
//!   paper scale).
//! * `--max-trips N` truncates the stream so CI exercises the identical
//!   code path in seconds; `--verify-resume` additionally runs the
//!   interrupt-at-midpoint + resume experiment against a straight-through
//!   run and fails on any divergence in report, trace or fleet geometry.
//!
//! The process exits non-zero when any accepted request violated its
//! service guarantee (must never happen), when `--require-reloaded` or
//! `--verify-resume` fail, or when the label store round trip fails.

use std::time::Instant;

use kinetic_core::{KineticConfig, PlannerKind};
use rideshare_bench::store::{LabelSource, StoreReport};
use rideshare_bench::{Experiment, Scale};
use rideshare_sim::checkpoint::digest_trips;
use rideshare_sim::{RequestTrace, SimConfig, Simulation};
use rideshare_workload::TripEvent;
use roadnet::CachedOracle;

struct Args {
    scale: Scale,
    seed: u64,
    max_trips: Option<usize>,
    fleet: Option<usize>,
    out: String,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    fresh: bool,
    require_reloaded: bool,
    verify_resume: bool,
    /// Dispatch-tick width in seconds (0 = dispatch each request alone).
    batch_window: f64,
    /// Re-run a sampled prefix with pruning disabled and fail on any
    /// divergence from the pruned dispatcher.
    verify_pruning: bool,
    /// Fail the run when replay throughput (requests submitted by this
    /// process per wall second) lands below this floor.
    min_trips_per_sec: Option<f64>,
    /// Fail the run when the pruning win regresses: mean candidates
    /// actually evaluated per request must stay below this fraction of
    /// the mean candidates the grid filter returned.
    max_evaluated_fraction: Option<f64>,
}

/// Parses a numeric flag value, exiting loudly on malformed input — a
/// silently ignored `--max-trips` typo would replay the full 432k-trip
/// stream instead of the truncated CI gate.
fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {value:?} for {flag}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Paper,
        seed: 42,
        max_trips: None,
        fleet: None,
        out: "BENCH_replay.json".to_string(),
        checkpoint: None,
        checkpoint_every: 10_000,
        fresh: false,
        require_reloaded: false,
        verify_resume: false,
        batch_window: 1.0,
        verify_pruning: false,
        min_trips_per_sec: None,
        max_evaluated_fraction: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" if i + 1 < argv.len() => {
                args.scale = Scale::parse(&argv[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown scale {:?}", argv[i + 1]);
                    std::process::exit(2);
                });
                i += 1;
            }
            "--seed" if i + 1 < argv.len() => {
                args.seed = parse_num("--seed", &argv[i + 1]);
                i += 1;
            }
            "--max-trips" if i + 1 < argv.len() => {
                args.max_trips = Some(parse_num("--max-trips", &argv[i + 1]));
                i += 1;
            }
            "--fleet" if i + 1 < argv.len() => {
                args.fleet = Some(parse_num("--fleet", &argv[i + 1]));
                i += 1;
            }
            "--out" if i + 1 < argv.len() => {
                args.out = argv[i + 1].clone();
                i += 1;
            }
            "--checkpoint" if i + 1 < argv.len() => {
                args.checkpoint = Some(argv[i + 1].clone());
                i += 1;
            }
            "--checkpoint-every" if i + 1 < argv.len() => {
                args.checkpoint_every =
                    parse_num::<usize>("--checkpoint-every", &argv[i + 1]).max(1);
                i += 1;
            }
            "--batch-window" if i + 1 < argv.len() => {
                args.batch_window = parse_num::<f64>("--batch-window", &argv[i + 1]).max(0.0);
                i += 1;
            }
            "--min-trips-per-sec" if i + 1 < argv.len() => {
                args.min_trips_per_sec = Some(parse_num("--min-trips-per-sec", &argv[i + 1]));
                i += 1;
            }
            "--max-evaluated-fraction" if i + 1 < argv.len() => {
                args.max_evaluated_fraction =
                    Some(parse_num("--max-evaluated-fraction", &argv[i + 1]));
                i += 1;
            }
            "--fresh" => args.fresh = true,
            "--require-reloaded" => args.require_reloaded = true,
            "--verify-resume" => args.verify_resume = true,
            "--verify-pruning" => args.verify_pruning = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} (expected --scale smoke|quick|paper, --seed N, \
                     --max-trips N, --fleet N, --out PATH, --checkpoint PATH, \
                     --checkpoint-every N, --batch-window SECONDS, --min-trips-per-sec X, \
                     --max-evaluated-fraction X, --fresh, --require-reloaded, \
                     --verify-resume, --verify-pruning)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// One metrics window, derived from the simulation's cumulative state (so
/// it can be recomputed identically after a resume).
struct Window {
    start_s: f64,
    submitted: u64,
    assigned: u64,
    rejected: u64,
    pickups: usize,
    wait_p50_s: f64,
    wait_p90_s: f64,
    wait_p99_s: f64,
    mean_onboard_after_pickup: f64,
    delivered: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Buckets everything observed so far into `Scale::WINDOWS_PER_RUN`
/// windows of the demand span. Stateless with respect to interruption:
/// only cumulative, checkpointed state is consulted.
fn windows(sim: &Simulation<'_>, scale: Scale) -> Vec<Window> {
    let window_s = scale.window_seconds();
    let count = Scale::WINDOWS_PER_RUN;
    let bucket = |t: f64| ((t / window_s) as usize).min(count - 1);
    let mut submitted = vec![0u64; count];
    let mut assigned = vec![0u64; count];
    let mut rejected = vec![0u64; count];
    let mut delivered = vec![0usize; count];
    for t in sim.trace().iter() {
        let w = bucket(t.submitted_s);
        submitted[w] += 1;
        if t.was_assigned() {
            assigned[w] += 1;
        } else {
            rejected[w] += 1;
        }
        if let Some(d) = t.delivered_s {
            delivered[bucket(d)] += 1;
        }
    }
    let mut waits: Vec<Vec<f64>> = vec![Vec::new(); count];
    let mut onboard: Vec<(usize, usize)> = vec![(0, 0); count]; // (sum, n)
    for ((&clock_s, &wait), &on) in sim
        .pickup_clock_samples()
        .iter()
        .zip(sim.wait_samples())
        .zip(sim.pickup_onboard_samples())
    {
        let w = bucket(clock_s);
        waits[w].push(wait);
        onboard[w].0 += on;
        onboard[w].1 += 1;
    }
    (0..count)
        .map(|w| {
            let mut ws = waits[w].clone();
            ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Window {
                start_s: w as f64 * window_s,
                submitted: submitted[w],
                assigned: assigned[w],
                rejected: rejected[w],
                pickups: ws.len(),
                wait_p50_s: percentile(&ws, 0.50),
                wait_p90_s: percentile(&ws, 0.90),
                wait_p99_s: percentile(&ws, 0.99),
                mean_onboard_after_pickup: if onboard[w].1 == 0 {
                    0.0
                } else {
                    onboard[w].0 as f64 / onboard[w].1 as f64
                },
                delivered: delivered[w],
            }
        })
        .collect()
}

struct RunState {
    checkpoints_written: usize,
    resumed_from: Option<usize>,
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    args: &Args,
    config: &SimConfig,
    trips: usize,
    sim: &Simulation<'_>,
    oracle_report: Option<&StoreReport>,
    run: &RunState,
    wall_s: f64,
    trips_per_second: f64,
    finished: bool,
    resume_identical: Option<bool>,
) {
    let report = sim.report();
    let ws = windows(sim, args.scale);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_replay/v1\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        format!("{:?}", args.scale).to_lowercase()
    ));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"trips\": {trips},\n"));
    json.push_str(&format!("  \"fleet\": {},\n", config.vehicles));
    json.push_str(&format!("  \"capacity\": {},\n", config.capacity));
    json.push_str(&format!(
        "  \"batch_window_s\": {:.1},\n",
        config.batch_window_seconds
    ));
    json.push_str(&format!("  \"finished\": {finished},\n"));
    json.push_str(&format!("  \"wall_clock_s\": {wall_s:.1},\n"));
    match oracle_report {
        Some(r) => json.push_str(&format!(
            "  \"oracle\": {{\"source\": \"{}\", \"fingerprint\": \"{:016x}\", \
             \"build_ms\": {:.1}, \"load_ms\": {:.1}, \"bytes\": {}, \
             \"roundtrip_verified\": {}}},\n",
            match r.source {
                LabelSource::Built => "built",
                LabelSource::Reloaded => "reloaded",
            },
            r.fingerprint,
            r.build_ms,
            r.load_ms,
            r.bytes,
            r.roundtrip_verified,
        )),
        None => json.push_str("  \"oracle\": {\"source\": \"dijkstra\"},\n"),
    }
    json.push_str(&format!(
        "  \"checkpoints\": {{\"written\": {}, \"every_requests\": {}, \"resumed_from_request\": {}}},\n",
        run.checkpoints_written,
        args.checkpoint_every,
        run.resumed_from
            .map_or("null".to_string(), |n| n.to_string()),
    ));
    json.push_str(&format!(
        "  \"totals\": {{\"requests\": {}, \"assigned\": {}, \"rejected\": {}, \
         \"served_rate\": {:.4}, \"completed\": {}, \"guarantee_violations\": {}, \
         \"acrt_ms\": {:.3}, \"mean_wait_s\": {:.1}, \"mean_detour_ratio\": {:.4}, \
         \"mean_candidates\": {:.1}, \"mean_candidates_evaluated\": {:.1}, \
         \"trips_per_second\": {:.2}, \"fleet_distance_km\": {:.1}, \
         \"distance_per_delivery_km\": {:.3}, \"occupancy_max\": {}, \
         \"occupancy_mean_of_max\": {:.2}, \"occupancy_top20_mean\": {:.2}, \
         \"mean_onboard_at_pickup\": {:.2}, \"span_s\": {:.0}}},\n",
        report.requests,
        report.assigned,
        report.rejected,
        report.service_rate(),
        report.completed,
        report.guarantee_violations,
        report.acrt_ms,
        report.mean_wait_seconds,
        report.mean_detour_ratio,
        report.mean_candidates,
        report.mean_candidates_evaluated,
        trips_per_second,
        report.fleet_distance_km,
        report.distance_per_delivery_km,
        report.occupancy.fleet_max,
        report.occupancy.mean_of_max,
        report.occupancy.top20_mean_of_max,
        report.occupancy.mean_at_pickup,
        report.span_seconds,
    ));
    json.push_str(&format!(
        "  \"resume_identical\": {},\n",
        resume_identical.map_or("null".to_string(), |b| b.to_string())
    ));
    json.push_str("  \"windows\": [\n");
    for (i, w) in ws.iter().enumerate() {
        let served = if w.submitted == 0 {
            0.0
        } else {
            w.assigned as f64 / w.submitted as f64
        };
        json.push_str(&format!(
            "    {{\"start_s\": {:.0}, \"submitted\": {}, \"assigned\": {}, \"rejected\": {}, \
             \"served_rate\": {:.4}, \"pickups\": {}, \"wait_p50_s\": {:.1}, \
             \"wait_p90_s\": {:.1}, \"wait_p99_s\": {:.1}, \"mean_onboard\": {:.2}, \
             \"delivered\": {}}}{}\n",
            w.start_s,
            w.submitted,
            w.assigned,
            w.rejected,
            served,
            w.pickups,
            w.wait_p50_s,
            w.wait_p90_s,
            w.wait_p99_s,
            w.mean_onboard_after_pickup,
            w.delivered,
            if i + 1 == ws.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(2);
    }
}

/// Deterministic observables for the `--verify-resume` comparison.
fn observables(sim: &Simulation<'_>) -> (Vec<u64>, Vec<RequestTrace>, Vec<u32>) {
    let r = sim.report();
    (
        vec![
            r.requests,
            r.assigned,
            r.rejected,
            r.completed,
            r.guarantee_violations,
            r.mean_wait_seconds.to_bits(),
            r.mean_detour_ratio.to_bits(),
            r.fleet_distance_km.to_bits(),
            r.mean_candidates.to_bits(),
            r.occupancy.fleet_max as u64,
            r.occupancy.mean_at_pickup.to_bits(),
        ],
        sim.trace().iter().copied().collect(),
        sim.vehicles().iter().map(|v| v.location()).collect(),
    )
}

/// Drives `sim` over `trips[next..]`, checkpointing and re-writing the
/// JSON artifact along the way.
#[allow(clippy::too_many_arguments)]
fn drive(
    sim: &mut Simulation<'_>,
    trips: &[TripEvent],
    mut next: usize,
    digest: u64,
    args: &Args,
    config: &SimConfig,
    oracle_report: Option<&StoreReport>,
    run: &mut RunState,
    started: Instant,
) -> usize {
    let window_s = args.scale.window_seconds();
    let mut next_flush_window = 1 + (sim.clock_seconds() / window_s) as usize;
    let start = next;
    while next < trips.len() {
        let end = batch_end(trips, next, sim.config().batch_window_seconds);
        let batch = &trips[next..end];
        let t_m = sim
            .config()
            .seconds_to_meters(batch[batch.len() - 1].time_seconds);
        sim.advance_all(t_m);
        sim.submit_batch(batch);
        // Checkpoints land on dispatch-tick boundaries: the batch that
        // crosses a `checkpoint_every` multiple triggers the write, so a
        // resumed run re-groups the remaining trips into exactly the
        // batches the interrupted run would have formed.
        let crossed = next / args.checkpoint_every != end / args.checkpoint_every;
        next = end;
        if sim.clock_seconds() >= next_flush_window as f64 * window_s {
            next_flush_window = 1 + (sim.clock_seconds() / window_s) as usize;
            let wall = started.elapsed().as_secs_f64();
            write_json(
                &args.out,
                args,
                config,
                trips.len(),
                sim,
                oracle_report,
                run,
                wall,
                (next - start) as f64 / wall.max(1e-9),
                false,
                None,
            );
            eprintln!(
                "[{:6.0} s wall] window {} | {} / {} requests submitted | {}",
                wall,
                next_flush_window - 1,
                next,
                trips.len(),
                sim.report().summary_line()
            );
        }
        if crossed {
            if let Some(path) = &args.checkpoint {
                match sim.write_checkpoint(path, next, digest) {
                    Ok(()) => run.checkpoints_written += 1,
                    Err(e) => eprintln!("checkpoint write failed ({e}); continuing"),
                }
            }
        }
    }
    next
}

/// End (exclusive) of the dispatch tick starting at `trips[start]`: all
/// consecutive trips sharing its `floor(t / batch_window)` bucket, or just
/// the single trip when batching is off.
fn batch_end(trips: &[TripEvent], start: usize, batch_window: f64) -> usize {
    if batch_window <= 0.0 {
        return start + 1;
    }
    let bucket = (trips[start].time_seconds / batch_window).floor();
    let mut end = start + 1;
    while end < trips.len() && (trips[end].time_seconds / batch_window).floor() == bucket {
        end += 1;
    }
    end
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    eprintln!(
        "paper_replay: generating {:?}-scale workload (seed {})...",
        args.scale, args.seed
    );
    let exp = Experiment::new(args.scale, args.seed);
    let trip_count = args
        .max_trips
        .unwrap_or(usize::MAX)
        .min(exp.workload.trips.len());
    let trips = &exp.workload.trips[..trip_count];
    eprintln!(
        "  network: {} nodes / {} edges; replaying {} of {} trips",
        exp.workload.network.node_count(),
        exp.workload.network.edge_count(),
        trips.len(),
        exp.workload.trips.len(),
    );

    let (oracle, oracle_report) = exp.oracle_with_report(args.scale);
    if args.require_reloaded {
        match &oracle_report {
            Some(r) if r.source == LabelSource::Reloaded => {
                eprintln!("  oracle: reloaded from store in {:.0} ms ✓", r.load_ms)
            }
            Some(r) => {
                eprintln!(
                    "FAIL: --require-reloaded but the labels were {:?} (store path {})",
                    r.source,
                    r.path.display()
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL: --require-reloaded at a scale that does not use hub labels");
                std::process::exit(1);
            }
        }
    }
    if let Some(r) = &oracle_report {
        if !r.roundtrip_verified {
            eprintln!("FAIL: label store round trip was not verified");
            std::process::exit(1);
        }
    }

    let config = SimConfig {
        vehicles: args.fleet.unwrap_or_else(|| args.scale.default_fleet()),
        capacity: 4,
        planner: PlannerKind::Kinetic(KineticConfig::slack()),
        cruise_when_idle: true,
        seed: args.seed,
        batch_window_seconds: args.batch_window,
        ..SimConfig::default()
    };

    if args.verify_pruning && !verify_pruning(&exp, &oracle, config, trips) {
        eprintln!("FAIL: pruned dispatch diverged from exhaustive evaluation");
        std::process::exit(1);
    }
    let digest = digest_trips(trips);
    let checkpoint_path = args.checkpoint.clone().unwrap_or_else(|| {
        format!(
            "target/replay-{}-seed{}.ckpt",
            format!("{:?}", args.scale).to_lowercase(),
            args.seed
        )
    });
    let args = Args {
        checkpoint: Some(checkpoint_path.clone()),
        ..args
    };
    let mut run = RunState {
        checkpoints_written: 0,
        resumed_from: None,
    };

    // --verify-resume: the interrupt-at-midpoint + resume experiment IS
    // the run. The resumed simulation (proven bit-identical to the
    // straight-through reference) produces the artifact, so the replay is
    // not paid a third time.
    if args.verify_resume {
        let Some((sim, cut)) = verify_resume(&exp, &oracle, config, trips, digest, &args) else {
            eprintln!("FAIL: resumed run diverged from the straight-through run");
            std::process::exit(1);
        };
        let run = RunState {
            checkpoints_written: 1,
            resumed_from: Some(cut),
        };
        // Conservative figure: the verify experiment replays the stream
        // ~2.5×, but only the resumed tail is credited.
        let wall = started.elapsed().as_secs_f64();
        finish(
            &sim,
            &args,
            &config,
            trips.len(),
            oracle_report.as_ref(),
            &run,
            wall,
            (trips.len() - cut) as f64 / wall.max(1e-9),
            Some(true),
        );
        return;
    }

    // Main replay: resume from an existing checkpoint unless --fresh.
    let (mut sim, next) = if !args.fresh && std::path::Path::new(&checkpoint_path).is_file() {
        match Simulation::resume_from_file(
            &exp.workload.network,
            &oracle,
            config,
            trips,
            &checkpoint_path,
        ) {
            Ok((sim, next)) => {
                eprintln!(
                    "  resumed from {} at request {next}/{}",
                    checkpoint_path,
                    trips.len()
                );
                run.resumed_from = Some(next);
                (sim, next)
            }
            Err(e) => {
                eprintln!("  checkpoint {checkpoint_path} not usable ({e}); starting fresh");
                (Simulation::new(&exp.workload.network, &oracle, config), 0)
            }
        }
    } else {
        (Simulation::new(&exp.workload.network, &oracle, config), 0)
    };

    let submitted = drive(
        &mut sim,
        trips,
        next,
        digest,
        &args,
        &config,
        oracle_report.as_ref(),
        &mut run,
        started,
    );
    eprintln!(
        "[{:6.0} s wall] all {} requests submitted; draining committed stops...",
        started.elapsed().as_secs_f64(),
        submitted
    );
    sim.drain();
    let wall = started.elapsed().as_secs_f64();
    finish(
        &sim,
        &args,
        &config,
        trips.len(),
        oracle_report.as_ref(),
        &run,
        wall,
        (submitted - next) as f64 / wall.max(1e-9),
        None,
    );
}

/// Final artifact write + gates shared by the normal and `--verify-resume`
/// paths. Exits non-zero on a guarantee violation.
#[allow(clippy::too_many_arguments)]
fn finish(
    sim: &Simulation<'_>,
    args: &Args,
    config: &SimConfig,
    trips: usize,
    oracle_report: Option<&StoreReport>,
    run: &RunState,
    wall_s: f64,
    trips_per_second: f64,
    resume_identical: Option<bool>,
) {
    write_json(
        &args.out,
        args,
        config,
        trips,
        sim,
        oracle_report,
        run,
        wall_s,
        trips_per_second,
        true,
        resume_identical,
    );
    let report = sim.report();
    eprintln!("wrote {}", args.out);
    eprintln!(
        "replay finished in {wall_s:.0} s wall ({trips_per_second:.1} trips/s, \
         {:.1} of {:.1} candidates evaluated per request): {}",
        report.mean_candidates_evaluated,
        report.mean_candidates,
        report.summary_line()
    );

    if report.guarantee_violations > 0 {
        eprintln!(
            "FAIL: {} accepted requests violated their service guarantee",
            report.guarantee_violations
        );
        std::process::exit(1);
    }
    if let Some(floor) = args.min_trips_per_sec {
        if trips_per_second < floor {
            eprintln!(
                "FAIL: replay throughput {trips_per_second:.2} trips/s is below the \
                 --min-trips-per-sec floor {floor:.2}"
            );
            std::process::exit(1);
        }
        eprintln!("OK: {trips_per_second:.1} trips/s clears the {floor:.1} trips/s floor");
    }
    if let Some(cap) = args.max_evaluated_fraction {
        let fraction = if report.mean_candidates > 0.0 {
            report.mean_candidates_evaluated / report.mean_candidates
        } else {
            0.0
        };
        if fraction > cap {
            eprintln!(
                "FAIL: {:.1} of {:.1} candidates evaluated per request ({fraction:.3}) \
                 exceeds the --max-evaluated-fraction cap {cap:.3} — the pruning win regressed",
                report.mean_candidates_evaluated, report.mean_candidates,
            );
            std::process::exit(1);
        }
        eprintln!(
            "OK: evaluated fraction {fraction:.4} ({:.1} of {:.1} candidates) is under the \
             {cap:.3} cap",
            report.mean_candidates_evaluated, report.mean_candidates,
        );
    }
    eprintln!(
        "OK: zero guarantee violations over {} requests{}{}",
        report.requests,
        if args.require_reloaded {
            "; persisted-oracle reload path exercised"
        } else {
            ""
        },
        if resume_identical == Some(true) {
            "; interrupt+resume bit-identical to straight-through"
        } else {
            ""
        },
    );
}

/// The `--verify-resume` experiment: straight-through vs
/// interrupt-at-midpoint + resume, compared on every deterministic
/// observable. On success returns the finished *resumed* simulation and
/// the interruption point — it is bit-identical to the straight-through
/// run, so the caller uses it directly for the artifact instead of
/// replaying a third time.
fn verify_resume<'a>(
    exp: &'a Experiment,
    oracle: &'a CachedOracle<'a>,
    config: SimConfig,
    trips: &'a [TripEvent],
    digest: u64,
    args: &Args,
) -> Option<(Simulation<'a>, usize)> {
    eprintln!("verify-resume: straight-through reference run...");
    let run_span = |sim: &mut Simulation<'_>, from: usize, to: usize| {
        let mut next = from;
        while next < to {
            let end = batch_end(trips, next, sim.config().batch_window_seconds).min(to);
            let batch = &trips[next..end];
            let t_m = sim
                .config()
                .seconds_to_meters(batch[batch.len() - 1].time_seconds);
            sim.advance_all(t_m);
            sim.submit_batch(batch);
            next = end;
        }
    };
    let run_tail = |sim: &mut Simulation<'_>, from: usize| {
        run_span(sim, from, trips.len());
        sim.drain();
    };
    let mut straight = Simulation::new(&exp.workload.network, oracle, config);
    run_tail(&mut straight, 0);
    let expect = observables(&straight);
    drop(straight);

    // The interruption must land on a dispatch-tick boundary, like every
    // real checkpoint, so the resumed run re-forms the same batches.
    let mut cut = trips.len() / 2;
    if config.batch_window_seconds > 0.0 {
        while cut > 0 && cut < trips.len() {
            let bucket = |i: usize| (trips[i].time_seconds / config.batch_window_seconds).floor();
            if bucket(cut - 1) == bucket(cut) {
                cut += 1;
            } else {
                break;
            }
        }
    }
    eprintln!("verify-resume: interrupting at request {cut}, then resuming...");
    let mut interrupted = Simulation::new(&exp.workload.network, oracle, config);
    run_span(&mut interrupted, 0, cut);
    let ckpt = args
        .checkpoint
        .clone()
        .unwrap_or_else(|| "target/replay-verify.ckpt".to_string())
        + ".verify";
    if let Err(e) = interrupted.write_checkpoint(&ckpt, cut, digest) {
        eprintln!("verify-resume: checkpoint write failed: {e}");
        return None;
    }
    drop(interrupted);
    let resumed = Simulation::resume_from_file(&exp.workload.network, oracle, config, trips, &ckpt);
    std::fs::remove_file(&ckpt).ok();
    let (mut resumed, next) = match resumed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("verify-resume: resume failed: {e}");
            return None;
        }
    };
    if next != cut {
        eprintln!("verify-resume: resumed at {next}, expected {cut}");
        return None;
    }
    run_tail(&mut resumed, next);
    let got = observables(&resumed);
    let ok = got == expect;
    if !ok {
        if got.0 != expect.0 {
            eprintln!(
                "verify-resume: report diverged\n  straight: {:?}\n  resumed:  {:?}",
                expect.0, got.0
            );
        }
        if got.1 != expect.1 {
            let first = got
                .1
                .iter()
                .zip(expect.1.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            eprintln!("verify-resume: traces diverged first at entry {first}");
        }
        if got.2 != expect.2 {
            eprintln!("verify-resume: final fleet geometry diverged");
        }
    } else {
        eprintln!(
            "verify-resume: OK — resumed run bit-identical over {} requests",
            trips.len()
        );
    }
    ok.then_some((resumed, cut))
}

/// The `--verify-pruning` experiment: replay a sampled prefix of the
/// stream twice — slack-pruned best-first dispatch (the default) vs
/// exhaustive candidate evaluation — and compare every deterministic
/// observable (report counters, full per-request trace, final fleet
/// geometry). The pruned dispatcher is designed to be assignment-identical
/// (the kinetic-core proptests sweep random networks, planners and worker
/// counts); this gate re-proves it on the actual replay workload and
/// oracle.
fn verify_pruning(
    exp: &Experiment,
    oracle: &CachedOracle<'_>,
    config: SimConfig,
    trips: &[TripEvent],
) -> bool {
    let prefix = trips.len().min(500);
    let trips = &trips[..prefix];
    eprintln!("verify-pruning: replaying a {prefix}-trip prefix pruned and exhaustively...");
    let run = |config: SimConfig| {
        let mut sim = Simulation::new(&exp.workload.network, oracle, config);
        let mut next = 0usize;
        while next < trips.len() {
            let end = batch_end(trips, next, config.batch_window_seconds);
            let batch = &trips[next..end];
            let t_m = sim
                .config()
                .seconds_to_meters(batch[batch.len() - 1].time_seconds);
            sim.advance_all(t_m);
            sim.submit_batch(batch);
            next = end;
        }
        sim.drain();
        observables(&sim)
    };
    let pruned = run(config);
    let mut exhaustive_config = config;
    exhaustive_config.dispatcher.use_pruning = false;
    let exhaustive = run(exhaustive_config);
    let ok = pruned == exhaustive;
    if !ok {
        if pruned.0 != exhaustive.0 {
            eprintln!(
                "verify-pruning: report diverged\n  exhaustive: {:?}\n  pruned:     {:?}",
                exhaustive.0, pruned.0
            );
        }
        if pruned.1 != exhaustive.1 {
            let first = pruned
                .1
                .iter()
                .zip(exhaustive.1.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            eprintln!("verify-pruning: traces diverged first at entry {first}");
        }
        if pruned.2 != exhaustive.2 {
            eprintln!("verify-pruning: final fleet geometry diverged");
        }
    } else {
        eprintln!("verify-pruning: OK — pruned dispatch bit-identical over {prefix} requests");
    }
    ok
}

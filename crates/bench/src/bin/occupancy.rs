//! Occupancy statistics at unlimited capacity (Sec. VI-B, closing
//! paragraph): the paper reports a maximum of 17 simultaneous passengers in
//! a single server, an average of 1.7, and an average of about 3.9 over the
//! top-20% most loaded servers, with 2,000 servers and default constraints.
//!
//! Run with `cargo run --release -p rideshare-bench --bin occupancy`.

use kinetic_core::{Constraints, KineticConfig, PlannerKind};
use rideshare_bench::{print_table, Experiment, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Occupancy at unlimited capacity ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let fleet = scale.default_tree_fleet();
    let report = exp.run_point(
        &oracle,
        PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        Constraints::paper_default(),
        fleet,
        usize::MAX,
        scale.requests_per_point(),
    );
    let occ = report.occupancy;
    print_table(
        "Occupancy statistics (unlimited capacity, hotspot tree)",
        &[
            "servers".into(),
            "requests".into(),
            "served %".into(),
            "max onboard".into(),
            "mean of per-server max".into(),
            "top-20% mean".into(),
            "mean at pickup".into(),
        ],
        &[vec![
            fleet.to_string(),
            report.requests.to_string(),
            format!("{:.1}", 100.0 * report.service_rate()),
            occ.fleet_max.to_string(),
            format!("{:.2}", occ.mean_of_max),
            format!("{:.2}", occ.top20_mean_of_max),
            format!("{:.2}", occ.mean_at_pickup),
        ]],
    );
    println!("\npaper (Shanghai, 2,000 servers): max 17, average 1.7, top-20% average ~3.9");
}

//! Figure 6 — four-algorithm comparison.
//!
//! * panel (a): ART (per-vehicle evaluation latency) versus the number of
//!   requests already scheduled on the vehicle, default parameters
//!   (10 min / 20%, default fleet, capacity 4);
//! * panel (b): ACRT versus the constraint sweep of Table I;
//! * panel (c): ACRT versus fleet size.
//!
//! Run with `cargo run --release -p rideshare-bench --bin fig6 -- --panel a
//! --scale quick`.

use kinetic_core::Constraints;
use rideshare_bench::{
    art_at, constraint_sweep, fmt_ms, four_algorithms, print_table, Experiment, HarnessArgs, Scale,
};

/// The MIP baseline re-solves an integer program per candidate vehicle and is
/// orders of magnitude slower than the other matchers (that observation is
/// the point of the figure); cap the requests it processes so the sweep
/// finishes, and note the cap in the output.
fn request_cap(algorithm: &str, scale: Scale) -> usize {
    let base = scale.requests_per_point();
    match (algorithm, scale) {
        ("mip", Scale::Quick) => base.min(200),
        ("mip", Scale::Smoke) => base.min(40),
        _ => base,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Figure 6 — four-algorithm comparison ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let constraints = Constraints::paper_default();
    let capacity = 4;

    if args.wants("a") {
        // Panel (a): ART by number of scheduled requests, default parameters.
        let fleet = scale.default_fleet();
        let mut header = vec!["algorithm".to_string()];
        for k in 0..=4 {
            header.push(format!("ART@{k} (ms)"));
        }
        let mut rows = Vec::new();
        for (name, planner) in four_algorithms() {
            let cap = request_cap(name, scale);
            let report = exp.run_point(&oracle, planner, constraints, fleet, capacity, cap);
            let mut row = vec![format!("{name} ({} req)", report.requests)];
            for k in 0..=4 {
                row.push(
                    art_at(&report, k)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 6(a): ART (ms) vs number of scheduled requests — 10min/20%, capacity 4",
            &header,
            &rows,
        );
    }

    if args.wants("b") {
        // Panel (b): ACRT vs constraints.
        let fleet = scale.default_fleet();
        let sweep = constraint_sweep();
        let mut header = vec!["algorithm".to_string()];
        header.extend(sweep.iter().map(|(n, _)| n.clone()));
        let mut rows = Vec::new();
        for (name, planner) in four_algorithms() {
            let cap = request_cap(name, scale);
            let mut row = vec![name.to_string()];
            for (_, c) in &sweep {
                let report = exp.run_point(&oracle, planner, *c, fleet, capacity, cap);
                row.push(fmt_ms(report.acrt_ms));
            }
            rows.push(row);
        }
        print_table(
            "Fig 6(b): ACRT (ms) vs constraints — default fleet, capacity 4",
            &header,
            &rows,
        );
    }

    if args.wants("c") {
        // Panel (c): ACRT vs fleet size.
        let sweep = scale.fleet_sweep();
        let mut header = vec!["algorithm".to_string()];
        header.extend(sweep.iter().map(|f| format!("{f} veh")));
        let mut rows = Vec::new();
        for (name, planner) in four_algorithms() {
            let cap = request_cap(name, scale);
            let mut row = vec![name.to_string()];
            for &fleet in &sweep {
                let report = exp.run_point(&oracle, planner, constraints, fleet, capacity, cap);
                row.push(fmt_ms(report.acrt_ms));
            }
            rows.push(row);
        }
        print_table(
            "Fig 6(c): ACRT (ms) vs number of servers — 10min/20%, capacity 4",
            &header,
            &rows,
        );
    }
}

//! `serve_sweep`: find the serving knee — the maximum sustained arrival
//! rate at which the dispatcher holds its admission SLO.
//!
//! The replay harnesses measure how fast the engine *can* chew a fixed
//! workload; this harness asks the serving question instead: at what
//! offered load does p99 admission-to-assignment latency stay inside the
//! budget with (almost) nothing shed and zero guarantee violations? It
//! walks an arrival-rate ladder — geometric doubling until the SLO breaks,
//! then a linear refinement between the last sustained and the first
//! breached rate — running one [`ServeLoop`] per rung over a shared demand
//! pool and oracle. The knee point and every rung's full serve report land
//! in `BENCH_serve.json` (schema `bench_serve/v1`).
//!
//! `--smoke` runs the truncated deterministic variant CI gates on: a fixed
//! four-rung ladder under the synthetic [`ServiceModel::Fixed`] cost model
//! (so the run is reproducible bit-for-bit), enforcing zero guarantee
//! violations at every rung and mean latency monotone in offered load.

use std::process::ExitCode;
use std::time::Instant;

use rideshare_serve::{
    PoissonArrivals, ServeConfig, ServeLoop, ServeReport, ServiceModel, SloConfig,
};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::CachedOracle;

const USAGE: &str = "\
serve_sweep: arrival-rate ladder to the SLO knee

USAGE:
  serve_sweep [--smoke] [OPTIONS]

OPTIONS:
  --smoke               truncated deterministic sweep (the CI gate):
                        fixed ladder, synthetic cost model, small city
  --duration <s>        virtual seconds served per rung [default: 60]
  --start-rate <r>      first ladder rung, req/s [default: 4]
  --max-rate <r>        stop doubling here even without a breach [default: 1024]
  --tick <s>            dispatch tick length [default: 1.0]
  --slo-p99 <s>         p99 latency budget [default: 3.0]
  --queue-capacity <n>  bounded ingress queue [default: 4096]
  --max-queue-wait <s>  stale-shed budget [default: 10.0]
  --fleet <n>           vehicles [default: 200]
  --trips <n>           demand-pool size [default: 5000]
  --seed <n>            workload + arrival seed [default: 42]
  --out <path>          artifact path [default: BENCH_serve.json]
  -h, --help            print this help
";

struct Args {
    smoke: bool,
    duration: f64,
    start_rate: f64,
    max_rate: f64,
    tick: f64,
    slo_p99: f64,
    queue_capacity: usize,
    max_queue_wait: f64,
    fleet: usize,
    trips: usize,
    seed: u64,
    out: String,
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse value {s:?}"))
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            smoke: false,
            duration: 60.0,
            start_rate: 4.0,
            max_rate: 1_024.0,
            tick: 1.0,
            slo_p99: 3.0,
            queue_capacity: 4_096,
            max_queue_wait: 10.0,
            fleet: 200,
            trips: 5_000,
            seed: 42,
            out: "BENCH_serve.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--smoke" => args.smoke = true,
                "--duration" => args.duration = parse(&value("--duration")?)?,
                "--start-rate" => args.start_rate = parse(&value("--start-rate")?)?,
                "--max-rate" => args.max_rate = parse(&value("--max-rate")?)?,
                "--tick" => args.tick = parse(&value("--tick")?)?,
                "--slo-p99" => args.slo_p99 = parse(&value("--slo-p99")?)?,
                "--queue-capacity" => args.queue_capacity = parse(&value("--queue-capacity")?)?,
                "--max-queue-wait" => args.max_queue_wait = parse(&value("--max-queue-wait")?)?,
                "--fleet" => args.fleet = parse(&value("--fleet")?)?,
                "--trips" => args.trips = parse(&value("--trips")?)?,
                "--seed" => args.seed = parse(&value("--seed")?)?,
                "--out" => args.out = value("--out")?,
                "-h" | "--help" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
            }
        }
        if args.smoke {
            // The CI variant must finish in seconds and be deterministic.
            args.duration = 20.0;
            args.fleet = 15;
            args.trips = 200;
        }
        Ok(args)
    }
}

/// Runs one ladder rung: a fresh simulation served at `rate` req/s.
fn run_rung(
    workload: &Workload,
    oracle: &CachedOracle,
    args: &Args,
    slo: SloConfig,
    model: ServiceModel,
    rate: f64,
) -> ServeReport {
    let sim = Simulation::new(
        &workload.network,
        oracle,
        SimConfig {
            vehicles: args.fleet,
            seed: args.seed,
            ..SimConfig::default()
        },
    );
    let mut serve = ServeLoop::new(
        sim,
        ServeConfig {
            slo,
            model,
            record_batches: false,
            ..ServeConfig::default()
        },
    );
    let wall = Instant::now();
    let report = serve.run(PoissonArrivals::new(
        &workload.trips,
        rate,
        args.duration,
        args.seed,
    ));
    eprintln!(
        "  rate {rate:>7.1} req/s | offered {:>6} shed {:>5} ({:>5.1}%) | p50 {:>7.3}s p99 {:>7.3}s | q_max {:>5} | violations {} | {:.1}s wall",
        report.offered,
        report.shed(),
        report.shed_rate() * 100.0,
        report.latency.p50_s,
        report.latency.p99_s,
        report.queue_depth_max,
        report.guarantee_violations,
        wall.elapsed().as_secs_f64(),
    );
    report
}

fn write_artifact(
    path: &str,
    args: &Args,
    slo: &SloConfig,
    model_desc: &str,
    rungs: &[(f64, ServeReport)],
    knee: Option<&(f64, ServeReport)>,
    wall_seconds: f64,
) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"bench_serve/v1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if args.smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!(
        "  \"city\": \"{}\",\n",
        if args.smoke { "small" } else { "medium" }
    ));
    s.push_str(&format!("  \"fleet\": {},\n", args.fleet));
    s.push_str(&format!("  \"pool_trips\": {},\n", args.trips));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"duration_seconds\": {},\n", args.duration));
    s.push_str(&format!("  \"service_model\": \"{model_desc}\",\n"));
    s.push_str(&format!(
        "  \"slo\": {{\"tick_seconds\": {}, \"p99_budget_seconds\": {}, \"queue_capacity\": {}, \"max_queue_wait_seconds\": {}}},\n",
        slo.tick_seconds, slo.p99_budget_seconds, slo.queue_capacity, slo.max_queue_wait_seconds
    ));
    s.push_str(&format!("  \"wall_seconds\": {wall_seconds:.1},\n"));
    s.push_str("  \"rungs\": [\n");
    for (i, (rate, report)) in rungs.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&report.json_object(Some(*rate), "    "));
        s.push_str(if i + 1 < rungs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    match knee {
        Some((rate, report)) => {
            s.push_str("  \"knee\": ");
            s.push_str(&report.json_object(Some(*rate), "  "));
            s.push('\n');
        }
        None => s.push_str("  \"knee\": null\n"),
    }
    s.push_str("}\n");
    std::fs::write(path, s)
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let wall = Instant::now();
    let city = if args.smoke {
        CityConfig::small()
    } else {
        CityConfig::medium()
    };
    eprintln!(
        "serve_sweep: generating workload ({} pool trips, seed {})...",
        args.trips, args.seed
    );
    let workload = Workload::generate(
        &city,
        &DemandConfig {
            trips: args.trips,
            ..DemandConfig::default()
        },
        args.seed,
    );
    let oracle = CachedOracle::without_labels(&workload.network);
    let slo = SloConfig {
        tick_seconds: args.tick,
        p99_budget_seconds: args.slo_p99,
        queue_capacity: args.queue_capacity,
        max_queue_wait_seconds: args.max_queue_wait,
        ..SloConfig::default()
    };
    // The smoke gate must be reproducible run to run, so it charges a
    // synthetic per-request cost instead of wall-clock; the full sweep
    // measures this machine's real dispatch cost.
    let (model, model_desc) = if args.smoke {
        (
            ServiceModel::Fixed {
                tick_overhead_s: 0.02,
                per_request_s: 0.01,
            },
            "fixed(tick_overhead=0.02s, per_request=0.01s)",
        )
    } else {
        (ServiceModel::Measured, "measured")
    };

    let mut rungs: Vec<(f64, ServeReport)> = Vec::new();
    if args.smoke {
        for rate in [2.0, 4.0, 8.0, 16.0] {
            let report = run_rung(&workload, &oracle, &args, slo, model, rate);
            rungs.push((rate, report));
        }
    } else {
        // Double until the SLO breaks (or the cap), then refine linearly
        // between the last sustained rung and the breach.
        let mut rate = args.start_rate;
        let mut breach: Option<f64> = None;
        while rate <= args.max_rate {
            let report = run_rung(&workload, &oracle, &args, slo, model, rate);
            let ok = report.meets_slo(&slo);
            rungs.push((rate, report));
            if !ok {
                breach = Some(rate);
                break;
            }
            rate *= 2.0;
        }
        if let Some(breach_rate) = breach {
            let last_ok = breach_rate / 2.0;
            let step = (breach_rate - last_ok) / 4.0;
            for i in 1..4 {
                let r = last_ok + step * i as f64;
                let report = run_rung(&workload, &oracle, &args, slo, model, r);
                let ok = report.meets_slo(&slo);
                rungs.push((r, report));
                if !ok {
                    break;
                }
            }
        }
        rungs.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    let knee = rungs
        .iter()
        .filter(|(_, r)| r.meets_slo(&slo))
        .max_by(|a, b| a.0.total_cmp(&b.0));

    match knee {
        Some((rate, report)) => eprintln!(
            "knee: {rate} req/s sustained (p99 {:.3}s <= {:.1}s budget, shed rate {:.4}, 0 violations)",
            report.latency.p99_s, slo.p99_budget_seconds, report.shed_rate()
        ),
        None => eprintln!("knee: none — even the first rung missed the SLO"),
    }

    if let Err(e) = write_artifact(
        &args.out,
        &args,
        &slo,
        model_desc,
        &rungs,
        knee,
        wall.elapsed().as_secs_f64(),
    ) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("artifact written to {}", args.out);

    // CI gates (always evaluated; they only cover what this run measured).
    let mut failures = Vec::new();
    for (rate, report) in &rungs {
        if report.guarantee_violations != 0 {
            failures.push(format!(
                "rate {rate}: {} guarantee violations (must be 0)",
                report.guarantee_violations
            ));
        }
    }
    // Latency must grow (within tolerance) with offered load — queueing
    // getting *cheaper* under more load means the virtual clock, the queue
    // or the histogram is broken. 10% slack absorbs Poisson noise. Only the
    // deterministic fixed-cost ladder can promise this: under the Measured
    // model a lightly-loaded rung pays the whole per-tick dispatch overhead
    // on a handful of requests while busier rungs amortise it across the
    // batch, so mean latency genuinely dips before queueing takes over.
    if args.smoke {
        for pair in rungs.windows(2) {
            let (r0, a) = &pair[0];
            let (r1, b) = &pair[1];
            if b.latency.mean_s < a.latency.mean_s * 0.9 {
                failures.push(format!(
                    "mean latency not monotone vs load: {:.4}s @ {r0} req/s vs {:.4}s @ {r1} req/s",
                    a.latency.mean_s, b.latency.mean_s
                ));
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "gates OK: zero violations at every rung{}",
        if args.smoke {
            ", latency monotone vs load"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}

//! Ablation: the hotspot clustering threshold θ.
//!
//! Theorem 2 bounds the cost of the hotspot-clustered schedule by
//! `2(m+1)·θ` above the optimum, so θ trades matching latency against
//! solution quality. This harness sweeps θ and reports ACRT, service rate
//! and the realised mean detour ratio, which should degrade gracefully as θ
//! grows.
//!
//! Run with `cargo run --release -p rideshare-bench --bin ablation_theta`.

use kinetic_core::{Constraints, KineticConfig, PlannerKind};
use rideshare_bench::{fmt_ms, print_table, Experiment, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Ablation: hotspot threshold θ ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let fleet = scale.default_tree_fleet();
    let constraints = Constraints::paper_default();
    let cap = scale.requests_per_point();

    let thetas = [0.0, 50.0, 100.0, 200.0, 400.0, 800.0];
    let mut rows = Vec::new();
    for &theta in &thetas {
        let planner = if theta == 0.0 {
            PlannerKind::Kinetic(KineticConfig::slack())
        } else {
            PlannerKind::Kinetic(KineticConfig::hotspot(theta))
        };
        let report = exp.run_point(&oracle, planner, constraints, fleet, 8, cap);
        rows.push(vec![
            if theta == 0.0 {
                "off (slack)".to_string()
            } else {
                format!("{theta:.0} m")
            },
            fmt_ms(report.acrt_ms),
            format!("{:.1}", 100.0 * report.service_rate()),
            format!("{:.3}", report.mean_detour_ratio),
            format!("{:.1}", report.mean_wait_seconds),
        ]);
    }
    print_table(
        "Hotspot threshold sweep — capacity 8, default tree fleet",
        &[
            "theta".into(),
            "ACRT (ms)".into(),
            "served %".into(),
            "mean detour x".into(),
            "mean wait (s)".into(),
        ],
        &rows,
    );
}

//! CI bench gate: dispatch one deterministic tick of requests sequentially
//! and through the parallel dispatcher at 1/2/4/8 workers, verify the
//! outcomes are bit-identical, and emit machine-readable timings.
//!
//! ```text
//! cargo run --release -p rideshare-bench --bin bench_summary -- \
//!     --scale smoke --out BENCH_dispatch.json
//! ```
//!
//! The process exits non-zero when any parallel worker count produces an
//! assignment sequence or statistics counts different from the sequential
//! dispatcher — that is the perf-regression CI job's correctness gate. The
//! JSON artifact records ACRT per worker count so regressions in the
//! numbers themselves can be tracked across CI runs (absolute thresholds
//! are deliberately not enforced: shared runners are too noisy).

use std::time::Instant;

use kinetic_core::{
    AssignmentOutcome, DispatchStats, Dispatcher, DispatcherConfig, ParallelDispatcher,
};
use rideshare_bench::dispatch_fixture::{self, DispatchFixture};
use roadnet::{CachedOracle, ShardedOracle};

/// One measured dispatch run: what it assigned and how fast.
struct RunResult {
    label: String,
    workers: usize,
    acrt_ms: f64,
    outcomes: Vec<AssignmentOutcome>,
    assigned: u64,
    rejected: u64,
    candidates: u64,
    art_counts: Vec<(usize, u64)>,
}

fn summarize(
    label: &str,
    workers: usize,
    acrt_ms: f64,
    outcomes: Vec<AssignmentOutcome>,
    stats: &DispatchStats,
) -> RunResult {
    RunResult {
        label: label.to_string(),
        workers,
        acrt_ms,
        outcomes,
        assigned: stats.assigned,
        rejected: stats.rejected,
        candidates: stats.candidates,
        art_counts: stats
            .art_buckets
            .iter()
            .map(|(&k, &(c, _))| (k, c))
            .collect(),
    }
}

/// Identical observable results: same assignments (vehicle, cost,
/// candidate counts) and same statistics counts.
fn matches(a: &RunResult, b: &RunResult) -> bool {
    a.outcomes == b.outcomes
        && a.assigned == b.assigned
        && a.rejected == b.rejected
        && a.candidates == b.candidates
        && a.art_counts == b.art_counts
}

/// Times the production sequential path: `Dispatcher` over the
/// `RefCell`-cached `CachedOracle` — the baseline the speedup numbers are
/// relative to (a mutex-taking oracle would flatter them).
fn run_sequential(fx: &DispatchFixture, oracle: &CachedOracle<'_>, repeats: usize) -> RunResult {
    let mut best_ms = f64::INFINITY;
    let mut kept: Option<(Vec<AssignmentOutcome>, DispatchStats)> = None;
    for _ in 0..repeats {
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let timer = Instant::now();
        let outcomes: Vec<_> = fx
            .requests
            .iter()
            .map(|r| d.assign(r, &mut vehicles, &fx.network, &mut index, oracle))
            .collect();
        let ms = timer.elapsed().as_secs_f64() * 1e3 / fx.requests.len() as f64;
        best_ms = best_ms.min(ms);
        kept = Some((outcomes, d.stats().clone()));
    }
    let (outcomes, stats) = kept.expect("at least one repeat");
    summarize("sequential", 1, best_ms, outcomes, &stats)
}

fn run_parallel(
    fx: &DispatchFixture,
    oracle: &ShardedOracle<'_>,
    workers: usize,
    repeats: usize,
) -> RunResult {
    let mut best_ms = f64::INFINITY;
    let mut kept: Option<(Vec<AssignmentOutcome>, DispatchStats)> = None;
    for _ in 0..repeats {
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = ParallelDispatcher::new(DispatcherConfig::default(), workers);
        let timer = Instant::now();
        let outcomes = d.assign_batch(&fx.requests, &mut vehicles, &fx.network, &mut index, oracle);
        let ms = timer.elapsed().as_secs_f64() * 1e3 / fx.requests.len() as f64;
        best_ms = best_ms.min(ms);
        kept = Some((outcomes, d.stats().clone()));
    }
    let (outcomes, stats) = kept.expect("at least one repeat");
    summarize(
        &format!("parallel-{workers}"),
        workers,
        best_ms,
        outcomes,
        &stats,
    )
}

fn json_escape_free(s: &str) -> &str {
    // Labels and keys in this file are ASCII identifiers; assert rather
    // than implement escaping nobody exercises.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_/.".contains(c)),
        "label {s:?} would need JSON escaping"
    );
    s
}

fn main() {
    let mut scale = "smoke".to_string();
    let mut out = "BENCH_dispatch.json".to_string();
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].clone();
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(42);
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --scale smoke|quick, --out PATH, --seed N)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // smoke: small and fast enough for every CI push; quick: the issue's
    // 40×40 / 1,000-vehicle acceptance geometry.
    let (rows, cols, fleet, requests, repeats) = match scale.as_str() {
        "smoke" => (20, 20, 250, 24, 3),
        "quick" => (40, 40, 1_000, 48, 3),
        other => {
            eprintln!("unknown --scale {other:?} (expected smoke or quick)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "building fixture: {rows}x{cols} grid, {fleet} vehicles, {requests} requests, seed {seed}"
    );
    let fx = dispatch_fixture::build(rows, cols, fleet, requests, seed);
    // The sequential baseline runs over the production CachedOracle, the
    // parallel runs over the thread-safe ShardedOracle; both are exact, so
    // the identity check is unaffected. Warm each so timing compares
    // dispatch, not cache fill.
    let seq_oracle = CachedOracle::new(&fx.network);
    let par_oracle = ShardedOracle::new(&fx.network);
    dispatch_fixture::warm(&fx, &seq_oracle, &par_oracle);

    let sequential = run_sequential(&fx, &seq_oracle, repeats);
    let parallel: Vec<RunResult> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| run_parallel(&fx, &par_oracle, w, repeats))
        .collect();

    let mut all_identical = true;
    for run in &parallel {
        let same = matches(run, &sequential);
        all_identical &= same;
        let speedup = sequential.acrt_ms / run.acrt_ms;
        eprintln!(
            "{:<12} acrt {:>9.3} ms  speedup {:>5.2}x  identical-to-sequential: {}",
            run.label, run.acrt_ms, speedup, same
        );
    }
    eprintln!(
        "{:<12} acrt {:>9.3} ms  (assigned {}/{})",
        sequential.label,
        sequential.acrt_ms,
        sequential.assigned,
        fx.requests.len()
    );

    let threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_dispatch/v1\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", json_escape_free(&scale)));
    json.push_str(&format!(
        "  \"grid\": {{\"rows\": {rows}, \"cols\": {cols}}},\n"
    ));
    json.push_str(&format!("  \"fleet\": {fleet},\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"sequential\": {{\"acrt_ms\": {:.6}, \"assigned\": {}, \"rejected\": {}}},\n",
        sequential.acrt_ms, sequential.assigned, sequential.rejected
    ));
    json.push_str("  \"parallel\": [\n");
    for (i, run) in parallel.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"acrt_ms\": {:.6}, \"speedup\": {:.4}, \"identical\": {}}}{}\n",
            run.workers,
            run.acrt_ms,
            sequential.acrt_ms / run.acrt_ms,
            matches(run, &sequential),
            if i + 1 == parallel.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"identical\": {all_identical}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out}");

    if !all_identical {
        eprintln!("FAIL: parallel dispatch diverged from sequential dispatch");
        std::process::exit(1);
    }
    eprintln!("OK: parallel dispatch bit-identical to sequential at 1/2/4/8 workers");
}

//! CI bench gate: dispatch determinism, hub-label construction and the
//! distance-cache sizing sweep, emitting machine-readable artifacts.
//!
//! ```text
//! cargo run --release -p rideshare-bench --bin bench_summary -- \
//!     --scale smoke --out BENCH_dispatch.json \
//!     --hublabel-out BENCH_hublabel.json --mip-out BENCH_mip.json
//! ```
//!
//! Three artifacts are written:
//!
//! * `BENCH_dispatch.json` — one deterministic tick of requests dispatched
//!   sequentially and through the parallel dispatcher at 1/2/4/8 workers,
//!   with ACRT per worker count.
//! * `BENCH_hublabel.json` — hub-label build time / mean label size /
//!   query latency on 20×20, 40×40 and 80×80 grids plus the ring-radial
//!   city preset; the 40×40 comparison against the frozen seed pipeline
//!   ([`rideshare_bench::baseline`]); the label persistence round-trip;
//!   and the LRU cache sizing sweep (hit rate vs capacity at three shard
//!   counts). Pass `--paper-build` to additionally run the ≥100k-vertex
//!   paper-scale build (minutes) and record it as the headline entry.
//! * `BENCH_mip.json` — MIP-matcher solve time versus trips on board
//!   (1/2/3/4) for the sparse revised-simplex solver and the frozen dense
//!   tableau baseline ([`rideshare_bench::baseline::dense_mip`]), with
//!   warm/cold solve counts and objective-equivalence checks.
//!
//! The process exits non-zero when any correctness or regression gate
//! fails:
//!
//! * parallel dispatch diverges from sequential dispatch;
//! * hub-label distances diverge from Dijkstra ground truth;
//! * a parallel label build is not bit-identical to the sequential build;
//! * the persistence round-trip does not reproduce the labels;
//! * the new 40×40 build is not ≥3× faster than the seed degree pipeline
//!   (measured 4.1× single-threaded; threshold leaves noise headroom), or
//!   its labels are larger than either seed baseline's;
//! * the sparse MIP solver disagrees with the dense baseline on any
//!   instance (objective mismatch or an invalid decoded schedule), or is
//!   not ≥10× faster at 3 trips on board.
//!
//! Absolute time thresholds are deliberately not enforced (shared runners
//! are too noisy); the speedup gate is a same-process ratio, which is
//! stable.

use std::time::Instant;

use kinetic_core::algorithms::{MipBuild, MipFormulation};
use kinetic_core::{
    AssignmentOutcome, DispatchStats, Dispatcher, DispatcherConfig, ParallelDispatcher,
};
use rideshare_bench::baseline::dense_mip;
use rideshare_bench::baseline::{SeedLabels, SeedOrdering};
use rideshare_bench::dispatch_fixture::{self, DispatchFixture};
use rideshare_bench::mip_fixture;
use rideshare_mip::{SolveError, SolveOptions};
use rideshare_workload::CityConfig;
use roadnet::{
    CachedOracle, DijkstraEngine, DistanceOracle, GeneratorConfig, HubLabels, NetworkKind, NodeId,
    RoadNetwork, ShardedOracle, ShortestPathEngine,
};
use workpool::WorkPool;

/// One measured dispatch run: what it assigned and how fast.
struct RunResult {
    label: String,
    workers: usize,
    acrt_ms: f64,
    outcomes: Vec<AssignmentOutcome>,
    assigned: u64,
    rejected: u64,
    candidates: u64,
    art_counts: Vec<(usize, u64)>,
}

fn summarize(
    label: &str,
    workers: usize,
    acrt_ms: f64,
    outcomes: Vec<AssignmentOutcome>,
    stats: &DispatchStats,
) -> RunResult {
    RunResult {
        label: label.to_string(),
        workers,
        acrt_ms,
        outcomes,
        assigned: stats.assigned,
        rejected: stats.rejected,
        candidates: stats.candidates,
        art_counts: stats
            .art_buckets
            .iter()
            .map(|(&k, &(c, _))| (k, c))
            .collect(),
    }
}

/// Identical observable results: same assignments (vehicle, cost,
/// candidate counts) and same statistics counts.
fn matches(a: &RunResult, b: &RunResult) -> bool {
    a.outcomes == b.outcomes
        && a.assigned == b.assigned
        && a.rejected == b.rejected
        && a.candidates == b.candidates
        && a.art_counts == b.art_counts
}

/// Times the production sequential path: `Dispatcher` over the
/// `RefCell`-cached `CachedOracle` — the baseline the speedup numbers are
/// relative to (a mutex-taking oracle would flatter them).
fn run_sequential(fx: &DispatchFixture, oracle: &CachedOracle<'_>, repeats: usize) -> RunResult {
    let mut best_ms = f64::INFINITY;
    let mut kept: Option<(Vec<AssignmentOutcome>, DispatchStats)> = None;
    for _ in 0..repeats {
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = Dispatcher::new(DispatcherConfig::default());
        let timer = Instant::now();
        let outcomes: Vec<_> = fx
            .requests
            .iter()
            .map(|r| d.assign(r, &mut vehicles, &fx.network, &mut index, oracle))
            .collect();
        let ms = timer.elapsed().as_secs_f64() * 1e3 / fx.requests.len() as f64;
        best_ms = best_ms.min(ms);
        kept = Some((outcomes, d.stats().clone()));
    }
    let (outcomes, stats) = kept.expect("at least one repeat");
    summarize("sequential", 1, best_ms, outcomes, &stats)
}

fn run_parallel(
    fx: &DispatchFixture,
    oracle: &ShardedOracle<'_>,
    workers: usize,
    repeats: usize,
) -> RunResult {
    let mut best_ms = f64::INFINITY;
    let mut kept: Option<(Vec<AssignmentOutcome>, DispatchStats)> = None;
    for _ in 0..repeats {
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = ParallelDispatcher::new(DispatcherConfig::default(), workers);
        let timer = Instant::now();
        let outcomes = d.assign_batch(&fx.requests, &mut vehicles, &fx.network, &mut index, oracle);
        let ms = timer.elapsed().as_secs_f64() * 1e3 / fx.requests.len() as f64;
        best_ms = best_ms.min(ms);
        kept = Some((outcomes, d.stats().clone()));
    }
    let (outcomes, stats) = kept.expect("at least one repeat");
    summarize(
        &format!("parallel-{workers}"),
        workers,
        best_ms,
        outcomes,
        &stats,
    )
}

/// One benchmarked hub-label network preset.
struct HubLabelPoint {
    name: String,
    nodes: usize,
    edges: usize,
    build_ms: f64,
    mean_label_size: f64,
    total_entries: usize,
    query_ns: f64,
    exact: bool,
    parallel_identical: Option<bool>,
    persist: Option<PersistPoint>,
}

struct PersistPoint {
    bytes: usize,
    save_ms: f64,
    load_ms: f64,
    roundtrip_identical: bool,
}

/// Deterministic query pairs spread over the vertex range.
fn query_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| (((i * 37) % n) as NodeId, ((i * 101 + 13) % n) as NodeId))
        .collect()
}

/// Compares hub-label distances against Dijkstra ground truth on sampled
/// pairs — the CI exactness gate.
fn exact_vs_dijkstra(graph: &RoadNetwork, labels: &HubLabels, pairs: usize) -> bool {
    let dij = DijkstraEngine::new(graph);
    for (s, t) in query_pairs(graph.node_count(), pairs) {
        let expect = dij.distance(s, t);
        let got = labels.distance(s, t);
        let ok = match (expect, got) {
            (Some(a), Some(b)) => (a - b).abs() <= 1e-6 * a.abs().max(1.0),
            (None, None) => true,
            _ => false,
        };
        if !ok {
            eprintln!("  EXACTNESS FAILURE at ({s}, {t}): dijkstra {expect:?} vs labels {got:?}");
            return false;
        }
    }
    true
}

/// Mean query latency over sampled pairs, in nanoseconds.
fn mean_query_ns(labels: &HubLabels, n: usize) -> f64 {
    let pairs = query_pairs(n, 512);
    // Warm once, then time several passes.
    let mut acc = 0.0f64;
    for &(s, t) in &pairs {
        acc += labels.distance(s, t).unwrap_or(0.0);
    }
    let timer = Instant::now();
    let passes = 20;
    for _ in 0..passes {
        for &(s, t) in &pairs {
            acc += labels.distance(s, t).unwrap_or(0.0);
        }
    }
    let ns = timer.elapsed().as_nanos() as f64 / (passes * pairs.len()) as f64;
    std::hint::black_box(acc);
    ns
}

/// Benchmarks one network preset: timed build, exactness, query latency,
/// and (optionally) the parallel-identity and persistence gates.
fn hublabel_point(
    name: &str,
    graph: &RoadNetwork,
    exact_pairs: usize,
    check_parallel: bool,
    check_persist: bool,
) -> HubLabelPoint {
    eprintln!(
        "hublabel: {name} ({} nodes, {} edges)...",
        graph.node_count(),
        graph.edge_count()
    );
    let timer = Instant::now();
    let labels = HubLabels::build(graph);
    let build_ms = timer.elapsed().as_secs_f64() * 1e3;
    let exact = exact_vs_dijkstra(graph, &labels, exact_pairs);
    let parallel_identical = check_parallel.then(|| {
        let sequential = HubLabels::build_sequential(graph, roadnet::HubOrdering::Contraction);
        let four =
            HubLabels::build_with_pool(graph, roadnet::HubOrdering::Contraction, &WorkPool::new(4));
        four == sequential
    });
    let persist = check_persist.then(|| {
        let path = std::env::temp_dir().join(format!("bench_hublabel_{name}.hlbl"));
        let timer = Instant::now();
        labels.save(graph, &path).expect("save labels");
        let save_ms = timer.elapsed().as_secs_f64() * 1e3;
        let bytes = std::fs::metadata(&path)
            .map(|m| m.len() as usize)
            .unwrap_or(0);
        let timer = Instant::now();
        let back = HubLabels::load(&path, graph).expect("load labels");
        let load_ms = timer.elapsed().as_secs_f64() * 1e3;
        std::fs::remove_file(&path).ok();
        PersistPoint {
            bytes,
            save_ms,
            load_ms,
            roundtrip_identical: back == labels,
        }
    });
    HubLabelPoint {
        name: name.to_string(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        build_ms,
        mean_label_size: labels.mean_label_size(),
        total_entries: labels.total_label_entries(),
        query_ns: mean_query_ns(&labels, graph.node_count()),
        exact,
        parallel_identical,
        persist,
    }
}

fn grid_network(side: usize, seed: u64) -> RoadNetwork {
    GeneratorConfig {
        kind: NetworkKind::Grid {
            rows: side,
            cols: side,
        },
        seed,
        edge_dropout: 0.05,
        arterials: true,
        ..GeneratorConfig::default()
    }
    .generate()
}

/// The 40×40 old-vs-new comparison backing the speedup gate.
struct BaselineComparison {
    new_build_ms: f64,
    new_mean_label: f64,
    seed_degree_ms: f64,
    seed_degree_mean_label: f64,
    seed_betweenness_ms: f64,
    seed_betweenness_mean_label: f64,
}

impl BaselineComparison {
    fn speedup_vs_degree(&self) -> f64 {
        self.seed_degree_ms / self.new_build_ms
    }
    fn speedup_vs_betweenness(&self) -> f64 {
        self.seed_betweenness_ms / self.new_build_ms
    }
    /// The regression gate: equal-or-better labels than both seed
    /// configurations and ≥3× faster than the seed's default (degree)
    /// pipeline — the configuration whose superlinear scaling ROADMAP
    /// records (measured 4.1× on one thread; 3× leaves noise headroom).
    fn passes(&self) -> bool {
        self.new_mean_label <= self.seed_degree_mean_label
            && self.new_mean_label <= self.seed_betweenness_mean_label
            && self.speedup_vs_degree() >= 3.0
    }
}

fn baseline_comparison(graph: &RoadNetwork) -> BaselineComparison {
    eprintln!("hublabel: 40x40 seed-pipeline baselines...");
    let timer = Instant::now();
    let new = HubLabels::build(graph);
    let new_build_ms = timer.elapsed().as_secs_f64() * 1e3;

    let timer = Instant::now();
    let degree = SeedLabels::build(graph, SeedOrdering::Degree);
    let seed_degree_ms = timer.elapsed().as_secs_f64() * 1e3;

    let timer = Instant::now();
    let betweenness = SeedLabels::build(graph, SeedOrdering::SampledBetweenness { samples: 16 });
    let seed_betweenness_ms = timer.elapsed().as_secs_f64() * 1e3;

    BaselineComparison {
        new_build_ms,
        new_mean_label: new.mean_label_size(),
        seed_degree_ms,
        seed_degree_mean_label: degree.mean_label_size(),
        seed_betweenness_ms,
        seed_betweenness_mean_label: betweenness.mean_label_size(),
    }
}

/// One cache-sweep measurement: hit rate of a sharded oracle replaying a
/// locality-heavy query stream at a given capacity and shard count.
struct CachePoint {
    shards: usize,
    capacity: usize,
    hit_rate: f64,
}

/// Replays a deterministic query stream with dispatch-like locality (a hot
/// working set of vehicle↔rider pairs plus a uniform tail) against sharded
/// LRU capacities — data for the ROADMAP "cache admission policy" question.
fn cache_sweep(graph: &RoadNetwork, seed: u64) -> Vec<CachePoint> {
    eprintln!("cache sweep: hit rate vs capacity at 1/4/16 shards...");
    let n = graph.node_count() as u64;
    // Deterministic stream: 75% of queries from a 256-pair hot set,
    // the rest uniform — roughly the locality dispatch exhibits.
    let queries: Vec<(NodeId, NodeId)> = {
        let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let hot: Vec<(NodeId, NodeId)> = (0..256)
            .map(|_| ((next() % n) as NodeId, (next() % n) as NodeId))
            .collect();
        (0..30_000)
            .map(|_| {
                if next() % 4 != 0 {
                    hot[(next() % 256) as usize]
                } else {
                    ((next() % n) as NodeId, (next() % n) as NodeId)
                }
            })
            .collect()
    };
    // Build the labels once; every sweep point shares them through
    // `with_labels` (the sweep varies cache geometry, not the oracle).
    let labels = HubLabels::build(graph);
    let mut out = Vec::new();
    for &shards in &[1usize, 4, 16] {
        for &capacity in &[1_000usize, 10_000, 100_000] {
            let oracle = ShardedOracle::with_labels(graph, labels.clone(), shards, capacity, 16);
            for &(s, t) in &queries {
                let _ = oracle.dist(s, t);
            }
            let stats = oracle.stats();
            out.push(CachePoint {
                shards,
                capacity,
                hit_rate: stats.distance_hit_rate(),
            });
        }
    }
    out
}

/// One trips-on-board measurement point of the MIP solver comparison.
struct MipPoint {
    trips: usize,
    instances: usize,
    sparse_ms_mean: f64,
    /// `None` above [`DENSE_MAX_TRIPS`] (a single dense solve there runs
    /// for tens of seconds; the frozen baseline exists to be measured, not
    /// waited on).
    dense_ms_mean: Option<f64>,
    speedup: Option<f64>,
    warm_solves: u64,
    cold_solves: u64,
    nodes_explored: u64,
    feasible: usize,
    objective_mismatches: usize,
    guarantee_violations: usize,
}

/// Largest trips-on-board count the dense baseline is timed at.
const DENSE_MAX_TRIPS: usize = 3;
/// The CI gate: sparse must beat dense by at least this factor at 3 trips.
const MIP_GATE_MIN_SPEEDUP: f64 = 10.0;

/// Times the sparse production solver against the frozen dense baseline on
/// identical MTZ scheduling models at 1–4 trips on board, checking
/// objective equivalence and service-guarantee validity along the way.
fn mip_section(seed: u64, instances: usize) -> Vec<MipPoint> {
    eprintln!("mip: sparse vs frozen dense baseline at 1..=4 trips...");
    let oracle = mip_fixture::oracle(seed);
    let mut out = Vec::new();
    for trips in 1..=4usize {
        let problems = mip_fixture::problems(&oracle, trips, instances, seed);
        let mut sparse_ms = 0.0f64;
        let mut sparse_timed = 0usize;
        let mut dense_ms = 0.0f64;
        let mut dense_timed = 0usize;
        let mut warm = 0u64;
        let mut cold = 0u64;
        let mut nodes = 0u64;
        let mut feasible = 0usize;
        let mut mismatches = 0usize;
        let mut violations = 0usize;
        for problem in &problems {
            let MipBuild::Built(formulation) = MipFormulation::build(problem, &oracle) else {
                continue;
            };
            let timer = Instant::now();
            let sparse = formulation.model.solve_with(&SolveOptions::default());
            sparse_ms += timer.elapsed().as_secs_f64() * 1e3;
            sparse_timed += 1;
            if let Ok(sol) = &sparse {
                feasible += 1;
                warm += sol.stats.warm_solves;
                cold += sol.stats.cold_solves;
                nodes += sol.stats.nodes_explored;
                // Decoded schedules must satisfy every service guarantee.
                match formulation.decode(sol) {
                    Some(schedule) => {
                        if problem.validate(&schedule, &oracle).is_err() {
                            violations += 1;
                        }
                    }
                    None => violations += 1,
                }
            }
            if trips <= DENSE_MAX_TRIPS {
                let timer = Instant::now();
                let dense = dense_mip::solve_dense(&formulation.model, 200_000);
                dense_ms += timer.elapsed().as_secs_f64() * 1e3;
                dense_timed += 1;
                let equivalent = match (&sparse, &dense) {
                    (Ok(a), Ok(b)) => {
                        (a.objective - b.objective).abs() <= 1e-6 * a.objective.abs().max(1.0)
                    }
                    (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => true,
                    _ => false,
                };
                if !equivalent {
                    eprintln!(
                        "  MIP EQUIVALENCE FAILURE at {trips} trips: sparse {:?} vs dense {:?}",
                        sparse.as_ref().map(|s| s.objective),
                        dense.as_ref().map(|d| d.objective)
                    );
                    mismatches += 1;
                }
            }
        }
        // Both means divide by the count actually timed (instances whose
        // build short-circuits are skipped for both solvers), so the gated
        // speedup compares like with like.
        let sparse_ms_mean = sparse_ms / sparse_timed.max(1) as f64;
        let dense_ms_mean = (dense_timed > 0).then(|| dense_ms / dense_timed as f64);
        let speedup = dense_ms_mean.map(|d| d / sparse_ms_mean);
        eprintln!(
            "  {trips} trips: sparse {:>9.3} ms  dense {}  speedup {}  warm/cold {}/{}",
            sparse_ms_mean,
            dense_ms_mean.map_or("      n/a".into(), |d| format!("{d:>9.3} ms")),
            speedup.map_or("   n/a".into(), |s| format!("{s:>6.1}x")),
            warm,
            cold,
        );
        out.push(MipPoint {
            trips,
            instances: sparse_timed,
            sparse_ms_mean,
            dense_ms_mean,
            speedup,
            warm_solves: warm,
            cold_solves: cold,
            nodes_explored: nodes,
            feasible,
            objective_mismatches: mismatches,
            guarantee_violations: violations,
        });
    }
    out
}

fn json_escape_free(s: &str) -> &str {
    // Labels and keys in this file are ASCII identifiers; assert rather
    // than implement escaping nobody exercises.
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "-_/.".contains(c)),
        "label {s:?} would need JSON escaping"
    );
    s
}

fn main() {
    let mut scale = "smoke".to_string();
    let mut out = "BENCH_dispatch.json".to_string();
    let mut hublabel_out = "BENCH_hublabel.json".to_string();
    let mut mip_out = "BENCH_mip.json".to_string();
    let mut paper_build = false;
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].clone();
                i += 1;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 1;
            }
            "--hublabel-out" if i + 1 < args.len() => {
                hublabel_out = args[i + 1].clone();
                i += 1;
            }
            "--mip-out" if i + 1 < args.len() => {
                mip_out = args[i + 1].clone();
                i += 1;
            }
            "--paper-build" => {
                paper_build = true;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(42);
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (expected --scale smoke|quick, --out PATH, \
                     --hublabel-out PATH, --mip-out PATH, --paper-build, --seed N)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // smoke: small and fast enough for every CI push; quick: the issue's
    // 40×40 / 1,000-vehicle acceptance geometry.
    let (rows, cols, fleet, requests, repeats) = match scale.as_str() {
        "smoke" => (20, 20, 250, 24, 3),
        "quick" => (40, 40, 1_000, 48, 3),
        other => {
            eprintln!("unknown --scale {other:?} (expected smoke or quick)");
            std::process::exit(2);
        }
    };

    eprintln!(
        "building fixture: {rows}x{cols} grid, {fleet} vehicles, {requests} requests, seed {seed}"
    );
    let fx = dispatch_fixture::build(rows, cols, fleet, requests, seed);
    // The sequential baseline runs over the production CachedOracle, the
    // parallel runs over the thread-safe ShardedOracle; both are exact, so
    // the identity check is unaffected. Warm each so timing compares
    // dispatch, not cache fill.
    let seq_oracle = CachedOracle::new(&fx.network);
    let par_oracle = ShardedOracle::new(&fx.network);
    dispatch_fixture::warm(&fx, &seq_oracle, &par_oracle);

    let sequential = run_sequential(&fx, &seq_oracle, repeats);
    let parallel: Vec<RunResult> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| run_parallel(&fx, &par_oracle, w, repeats))
        .collect();

    let mut all_identical = true;
    for run in &parallel {
        let same = matches(run, &sequential);
        all_identical &= same;
        let speedup = sequential.acrt_ms / run.acrt_ms;
        eprintln!(
            "{:<12} acrt {:>9.3} ms  speedup {:>5.2}x  identical-to-sequential: {}",
            run.label, run.acrt_ms, speedup, same
        );
    }
    eprintln!(
        "{:<12} acrt {:>9.3} ms  (assigned {}/{})",
        sequential.label,
        sequential.acrt_ms,
        sequential.assigned,
        fx.requests.len()
    );

    let threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_dispatch/v1\",\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", json_escape_free(&scale)));
    json.push_str(&format!(
        "  \"grid\": {{\"rows\": {rows}, \"cols\": {cols}}},\n"
    ));
    json.push_str(&format!("  \"fleet\": {fleet},\n"));
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"sequential\": {{\"acrt_ms\": {:.6}, \"assigned\": {}, \"rejected\": {}}},\n",
        sequential.acrt_ms, sequential.assigned, sequential.rejected
    ));
    json.push_str("  \"parallel\": [\n");
    for (i, run) in parallel.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"acrt_ms\": {:.6}, \"speedup\": {:.4}, \"identical\": {}}}{}\n",
            run.workers,
            run.acrt_ms,
            sequential.acrt_ms / run.acrt_ms,
            matches(run, &sequential),
            if i + 1 == parallel.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"identical\": {all_identical}\n"));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out}");

    // ---- Hub-label construction section -------------------------------
    let mut points = Vec::new();
    points.push(hublabel_point(
        "grid-20x20",
        &grid_network(20, seed),
        400,
        true,
        false,
    ));
    let grid40 = grid_network(40, seed);
    points.push(hublabel_point("grid-40x40", &grid40, 400, true, true));
    points.push(hublabel_point(
        "grid-80x80",
        &grid_network(80, seed),
        120,
        false,
        false,
    ));
    let (ring, _) = CityConfig::ring_city().build(seed);
    points.push(hublabel_point("ring-city", &ring, 200, false, false));
    let comparison = baseline_comparison(&grid40);
    if paper_build {
        eprintln!("hublabel: building paper-scale network (this takes minutes)...");
        let timer = Instant::now();
        let (paper_net, _) = CityConfig::shanghai_scale().build(seed);
        eprintln!(
            "  generated {} nodes / {} edges in {:.1}s",
            paper_net.node_count(),
            paper_net.edge_count(),
            timer.elapsed().as_secs_f64()
        );
        points.push(hublabel_point(
            "paper-shanghai-scale",
            &paper_net,
            12,
            false,
            true,
        ));
    }
    let cache_points = cache_sweep(&grid40, seed);

    for p in &points {
        eprintln!(
            "{:<22} n={:<7} build {:>10.1} ms  mean label {:>6.1}  query {:>7.1} ns  exact {}  par-id {:?}",
            p.name, p.nodes, p.build_ms, p.mean_label_size, p.query_ns, p.exact, p.parallel_identical
        );
    }
    eprintln!(
        "40x40 old-vs-new: new {:.1} ms / {:.1} labels | seed degree {:.1} ms / {:.1} ({:.2}x) | seed betweenness {:.1} ms / {:.1} ({:.2}x)",
        comparison.new_build_ms,
        comparison.new_mean_label,
        comparison.seed_degree_ms,
        comparison.seed_degree_mean_label,
        comparison.speedup_vs_degree(),
        comparison.seed_betweenness_ms,
        comparison.seed_betweenness_mean_label,
        comparison.speedup_vs_betweenness(),
    );

    let exact_ok = points.iter().all(|p| p.exact);
    let parallel_ok = points.iter().all(|p| p.parallel_identical.unwrap_or(true));
    let persist_ok = points
        .iter()
        .all(|p| p.persist.as_ref().is_none_or(|q| q.roundtrip_identical));
    let baseline_ok = comparison.passes();

    let mut hl_json = String::new();
    hl_json.push_str("{\n");
    hl_json.push_str("  \"schema\": \"bench_hublabel/v1\",\n");
    hl_json.push_str(&format!("  \"seed\": {seed},\n"));
    hl_json.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    hl_json.push_str("  \"networks\": [\n");
    for (i, p) in points.iter().enumerate() {
        hl_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"edges\": {}, \"build_ms\": {:.3}, \
             \"mean_label_size\": {:.3}, \"total_entries\": {}, \"query_ns\": {:.1}, \
             \"exact\": {}, \"parallel_identical\": {}, \"persist\": {}}}{}\n",
            json_escape_free(&p.name),
            p.nodes,
            p.edges,
            p.build_ms,
            p.mean_label_size,
            p.total_entries,
            p.query_ns,
            p.exact,
            p.parallel_identical
                .map_or("null".to_string(), |b| b.to_string()),
            p.persist.as_ref().map_or("null".to_string(), |q| format!(
                "{{\"bytes\": {}, \"save_ms\": {:.3}, \"load_ms\": {:.3}, \"roundtrip_identical\": {}}}",
                q.bytes, q.save_ms, q.load_ms, q.roundtrip_identical
            )),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    hl_json.push_str("  ],\n");
    hl_json.push_str(&format!(
        "  \"baseline_40x40\": {{\"new_build_ms\": {:.3}, \"new_mean_label\": {:.3}, \
         \"seed_degree_ms\": {:.3}, \"seed_degree_mean_label\": {:.3}, \
         \"seed_betweenness_ms\": {:.3}, \"seed_betweenness_mean_label\": {:.3}, \
         \"speedup_vs_seed_degree\": {:.3}, \"speedup_vs_seed_betweenness\": {:.3}, \
         \"gate_min_speedup_vs_seed_degree\": 3.0, \"passes\": {}}},\n",
        comparison.new_build_ms,
        comparison.new_mean_label,
        comparison.seed_degree_ms,
        comparison.seed_degree_mean_label,
        comparison.seed_betweenness_ms,
        comparison.seed_betweenness_mean_label,
        comparison.speedup_vs_degree(),
        comparison.speedup_vs_betweenness(),
        baseline_ok,
    ));
    hl_json.push_str("  \"cache_sweep\": [\n");
    for (i, c) in cache_points.iter().enumerate() {
        hl_json.push_str(&format!(
            "    {{\"shards\": {}, \"capacity\": {}, \"hit_rate\": {:.4}}}{}\n",
            c.shards,
            c.capacity,
            c.hit_rate,
            if i + 1 == cache_points.len() { "" } else { "," }
        ));
    }
    hl_json.push_str("  ],\n");
    hl_json.push_str(&format!(
        "  \"gates\": {{\"exact\": {exact_ok}, \"parallel_identical\": {parallel_ok}, \
         \"persist_roundtrip\": {persist_ok}, \"baseline_speedup\": {baseline_ok}}}\n"
    ));
    hl_json.push_str("}\n");
    if let Err(e) = std::fs::write(&hublabel_out, &hl_json) {
        eprintln!("failed to write {hublabel_out}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {hublabel_out}");

    // ---- MIP solver section -------------------------------------------
    let mip_instances = if scale == "quick" { 5 } else { 3 };
    let mip_points = mip_section(seed, mip_instances);
    let mip_equiv_ok = mip_points
        .iter()
        .all(|p| p.objective_mismatches == 0 && p.guarantee_violations == 0);
    let mip_speedup_3 = mip_points
        .iter()
        .find(|p| p.trips == 3)
        .and_then(|p| p.speedup);
    let mip_speedup_ok = mip_speedup_3.is_some_and(|s| s >= MIP_GATE_MIN_SPEEDUP);

    let mut mip_json = String::new();
    mip_json.push_str("{\n");
    mip_json.push_str("  \"schema\": \"bench_mip/v1\",\n");
    mip_json.push_str(&format!("  \"seed\": {seed},\n"));
    mip_json.push_str(&format!("  \"hardware_threads\": {threads},\n"));
    mip_json.push_str("  \"points\": [\n");
    for (i, p) in mip_points.iter().enumerate() {
        mip_json.push_str(&format!(
            "    {{\"trips\": {}, \"instances\": {}, \"sparse_ms_mean\": {:.6}, \
             \"dense_ms_mean\": {}, \"speedup\": {}, \"warm_solves\": {}, \
             \"cold_solves\": {}, \"nodes_explored\": {}, \"feasible\": {}, \
             \"objective_mismatches\": {}, \"guarantee_violations\": {}}}{}\n",
            p.trips,
            p.instances,
            p.sparse_ms_mean,
            p.dense_ms_mean
                .map_or("null".to_string(), |v| format!("{v:.6}")),
            p.speedup.map_or("null".to_string(), |v| format!("{v:.3}")),
            p.warm_solves,
            p.cold_solves,
            p.nodes_explored,
            p.feasible,
            p.objective_mismatches,
            p.guarantee_violations,
            if i + 1 == mip_points.len() { "" } else { "," }
        ));
    }
    mip_json.push_str("  ],\n");
    mip_json.push_str(&format!(
        "  \"gates\": {{\"equivalence\": {mip_equiv_ok}, \
         \"gate_min_speedup_vs_dense_3trips\": {MIP_GATE_MIN_SPEEDUP}, \
         \"speedup_vs_dense_3trips\": {}, \"speedup\": {mip_speedup_ok}}}\n",
        mip_speedup_3.map_or("null".to_string(), |v| format!("{v:.3}")),
    ));
    mip_json.push_str("}\n");
    if let Err(e) = std::fs::write(&mip_out, &mip_json) {
        eprintln!("failed to write {mip_out}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {mip_out}");

    let mut failed = false;
    if !all_identical {
        eprintln!("FAIL: parallel dispatch diverged from sequential dispatch");
        failed = true;
    }
    if !exact_ok {
        eprintln!("FAIL: hub-label distances diverged from Dijkstra ground truth");
        failed = true;
    }
    if !parallel_ok {
        eprintln!("FAIL: parallel hub-label build is not bit-identical to sequential");
        failed = true;
    }
    if !persist_ok {
        eprintln!("FAIL: persisted hub labels did not round-trip identically");
        failed = true;
    }
    if !baseline_ok {
        eprintln!(
            "FAIL: hub-label regression gate (need mean label <= both seed baselines and \
             >= 3x speedup vs seed degree pipeline)"
        );
        failed = true;
    }
    if !mip_equiv_ok {
        eprintln!(
            "FAIL: sparse MIP solver diverged from the frozen dense baseline \
             (objective mismatch or guarantee violation)"
        );
        failed = true;
    }
    if !mip_speedup_ok {
        eprintln!(
            "FAIL: MIP speedup gate (need >= {MIP_GATE_MIN_SPEEDUP}x vs the frozen dense \
             solver at 3 trips, measured {mip_speedup_3:?})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "OK: dispatch identical; hub labels exact, deterministic across workers, \
         persistable, and {:.1}x faster than the seed pipeline at 40x40; \
         MIP solver equivalent to the dense baseline and {:.1}x faster at 3 trips",
        comparison.speedup_vs_degree(),
        mip_speedup_3.unwrap_or(f64::NAN),
    );
}

//! Figure 9 — tree variants at higher load.
//!
//! * panel (a): ART at six scheduled requests versus the constraint sweep;
//! * panel (b): ART at six scheduled requests versus fleet size;
//! * panel (c): ACRT versus vehicle capacity (3 … 16 and unlimited). As in
//!   the paper, the basic and slack-time trees stop being able to complete
//!   the run once the capacity (and hence the number of co-located stops)
//!   grows; a per-point wall-clock budget reproduces that break-off and the
//!   affected cells are printed as `DNF`.
//!
//! Run with `cargo run --release -p rideshare-bench --bin fig9`.

use std::time::Instant;

use kinetic_core::Constraints;
use rideshare_bench::{
    art_at, constraint_sweep, fmt_ms, print_table, tree_variants, Experiment, HarnessArgs, Scale,
};

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Figure 9 — tree algorithms at higher load ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let constraints = Constraints::paper_default();
    let fleet = scale.default_tree_fleet();
    let cap = scale.requests_per_point();

    if args.wants("a") {
        let sweep = constraint_sweep();
        let mut header = vec!["variant".to_string()];
        header.extend(sweep.iter().map(|(n, _)| n.clone()));
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let mut row = vec![name.to_string()];
            for (_, c) in &sweep {
                let report = exp.run_point(&oracle, planner, *c, fleet, 6, cap);
                row.push(
                    art_at(&report, 6)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 9(a): ART (ms) at 6 requests vs constraints — capacity 6",
            &header,
            &rows,
        );
    }

    if args.wants("b") {
        let sweep = scale.tree_fleet_sweep();
        let mut header = vec!["variant".to_string()];
        header.extend(sweep.iter().map(|f| format!("{f} veh")));
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let mut row = vec![name.to_string()];
            for &fl in &sweep {
                let report = exp.run_point(&oracle, planner, constraints, fl, 6, cap);
                row.push(
                    art_at(&report, 6)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 9(b): ART (ms) at 6 requests vs number of servers — 10min/20%, capacity 6",
            &header,
            &rows,
        );
    }

    if args.wants("c") {
        // Capacity sweep from Table II; usize::MAX plays "unlimited".
        let capacities: Vec<(String, usize)> = match scale {
            Scale::Smoke => vec![
                ("3".into(), 3),
                ("6".into(), 6),
                ("unlim".into(), usize::MAX),
            ],
            _ => vec![
                ("3".into(), 3),
                ("4".into(), 4),
                ("5".into(), 5),
                ("6".into(), 6),
                ("7".into(), 7),
                ("8".into(), 8),
                ("12".into(), 12),
                ("16".into(), 16),
                ("unlim".into(), usize::MAX),
            ],
        };
        // Per-point wall-clock budget standing in for the paper's 3 GB
        // memory cap: once a variant exceeds it, larger capacities are
        // reported as DNF ("did not finish"). Both knobs come from `Scale`
        // (audited against `span_seconds` there) instead of repeating
        // literals per binary.
        let budget_secs = scale.point_budget_seconds();
        let cap_requests = scale.capacity_sweep_requests();
        let mut header = vec!["variant".to_string()];
        header.extend(capacities.iter().map(|(n, _)| format!("cap {n}")));
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let mut row = vec![name.to_string()];
            let mut broke_off = false;
            for (label, capacity) in &capacities {
                let unlimited = *capacity == usize::MAX;
                // As in the paper, only the hotspot variant attempts the
                // unlimited-capacity run once the others have broken off.
                if broke_off || (unlimited && name != "tree-hotspot") {
                    row.push("DNF".to_string());
                    continue;
                }
                let timer = Instant::now();
                let report = exp.run_point(
                    &oracle,
                    planner,
                    constraints,
                    fleet,
                    *capacity,
                    cap_requests,
                );
                let elapsed = timer.elapsed().as_secs_f64();
                row.push(fmt_ms(report.acrt_ms));
                if elapsed > budget_secs {
                    broke_off = true;
                    println!(
                        "  [{name}] capacity {label}: point took {elapsed:.1}s > {budget_secs}s budget; larger capacities marked DNF"
                    );
                }
            }
            rows.push(row);
        }
        print_table(
            "Fig 9(c): ACRT (ms) vs capacity — 10min/20%, default tree fleet",
            &header,
            &rows,
        );
    }
}

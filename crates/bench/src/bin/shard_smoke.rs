//! `shard_smoke`: the sharded-engine determinism and throughput gate.
//!
//! Partitions the city into 1/2/4/8 regions, runs the same workload
//! through [`ShardedSimulation`] at every shard count, and gates on the
//! contracts the partitioned architecture promises:
//!
//! 1. **Bit-identity** — at every shard count the sharded run must
//!    reproduce the single-shard [`Simulation`] exactly: every
//!    deterministic report field bit-for-bit, every per-request trace,
//!    and the final fleet geometry. Migrations, cross-region borrows and
//!    remote commits all flow through the `ShardBroker`, so a single
//!    ordering leak anywhere in the barrier protocol fails the gate.
//! 2. **Zero guarantee violations** — the service guarantee holds at
//!    every shard count (it must: the dispatch decisions are identical).
//! 3. **Broker exercise** — at k >= 2 the run must actually migrate
//!    vehicles and dispatch boundary requests; a gate that never crosses
//!    a region border proves nothing.
//!
//! Records trips/sec per shard count plus the partition shape (region
//! sizes, boundary fraction, fingerprint). Writes `BENCH_shard.json`
//! (schema `bench_shard/v1`); exits non-zero on any gate failure.

use std::process::ExitCode;
use std::time::Instant;

use rideshare_bench::store;
use rideshare_sim::{RequestTrace, ShardedSimulation, SimConfig, SimReport, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::{CachedOracle, PartitionSpec};

const USAGE: &str = "\
shard_smoke: sharded-engine determinism + throughput gate

Runs the same workload through the sharded engine at 1/2/4/8 shards and
fails unless every run is bit-identical to the single-shard reference
(reports, traces, final fleet) with zero guarantee violations.

USAGE:
  shard_smoke [--smoke] [--out <path>] [--seed <n>] [--trips <n>] [--vehicles <n>]

OPTIONS:
  --smoke         small city + Dijkstra oracle (fast CI gate)
                  [default: medium city + persisted hub labels]
  --out <path>    artifact path [default: BENCH_shard.json]
  --seed <n>      workload + fleet seed [default: 42]
  --trips <n>     pool trips [default: 2000 medium / 300 smoke]
  --vehicles <n>  fleet size [default: 60 medium / 20 smoke]
  -h, --help      print this help
";

struct Args {
    smoke: bool,
    out: String,
    seed: u64,
    trips: Option<usize>,
    vehicles: Option<usize>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            smoke: false,
            out: "BENCH_shard.json".to_string(),
            seed: 42,
            trips: None,
            vehicles: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--smoke" => args.smoke = true,
                "--out" => args.out = value("--out")?,
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "could not parse --seed".to_string())?
                }
                "--trips" => {
                    args.trips = Some(
                        value("--trips")?
                            .parse()
                            .map_err(|_| "could not parse --trips".to_string())?,
                    )
                }
                "--vehicles" => {
                    args.vehicles = Some(
                        value("--vehicles")?
                            .parse()
                            .map_err(|_| "could not parse --vehicles".to_string())?,
                    )
                }
                "-h" | "--help" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
            }
        }
        Ok(args)
    }
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Every deterministic observable of a finished run. Wall-clock latencies
/// (`acrt_ms`, per-bucket ART means) are excluded by construction; float
/// fields compare through their bit patterns.
fn report_numbers(r: &SimReport) -> Vec<u64> {
    vec![
        r.requests,
        r.assigned,
        r.rejected,
        r.completed,
        r.guarantee_violations,
        r.mean_wait_seconds.to_bits(),
        r.mean_detour_ratio.to_bits(),
        r.fleet_distance_km.to_bits(),
        r.distance_per_delivery_km.to_bits(),
        r.mean_candidates.to_bits(),
        r.mean_candidates_evaluated.to_bits(),
        r.span_seconds.to_bits(),
        r.occupancy.fleet_max as u64,
        r.occupancy.mean_of_max.to_bits(),
        r.occupancy.top20_mean_of_max.to_bits(),
        r.occupancy.mean_at_pickup.to_bits(),
        r.art_table.iter().map(|&(k, c, _)| k as u64 + c).sum(),
    ]
}

struct ShardRun {
    k: usize,
    wall_seconds: f64,
    trips_per_sec: f64,
    bit_identical: bool,
    report: SimReport,
    region_sizes: Vec<usize>,
    boundary_fraction: f64,
    fingerprint: u64,
    migrations: u64,
    borrows: u64,
    cross_commits: u64,
    local_requests: u64,
    boundary_requests: u64,
}

fn report_json(r: &SimReport, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"requests\": {}, \"assigned\": {}, \"rejected\": {}, \
         \"completed\": {},\n{indent}  \"guarantee_violations\": {}, \
         \"mean_wait_seconds\": {:.3}, \"mean_detour_ratio\": {:.4},\n{indent}  \
         \"fleet_distance_km\": {:.3}, \"distance_per_delivery_km\": {:.3}, \
         \"mean_candidates\": {:.3}\n{indent}}}",
        r.requests,
        r.assigned,
        r.rejected,
        r.completed,
        r.guarantee_violations,
        r.mean_wait_seconds,
        r.mean_detour_ratio,
        r.fleet_distance_km,
        r.distance_per_delivery_km,
        r.mean_candidates,
    )
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let wall = Instant::now();
    let (city, city_name) = if args.smoke {
        (CityConfig::small(), "small")
    } else {
        (CityConfig::medium(), "medium")
    };
    let trips = args.trips.unwrap_or(if args.smoke { 300 } else { 2_000 });
    let vehicles = args.vehicles.unwrap_or(if args.smoke { 20 } else { 60 });
    eprintln!(
        "shard_smoke: {city_name} city, {trips} trips, fleet {vehicles}, seed {}",
        args.seed
    );
    let workload = Workload::generate(
        &city,
        &DemandConfig {
            trips,
            ..DemandConfig::default()
        },
        args.seed,
    );
    // The medium-city run pays for exact distances once through the
    // persisted label store; the smoke gate stays dependency-free on a
    // city small enough for cached Dijkstra.
    let (oracle, label_source) = if args.smoke {
        (CachedOracle::without_labels(&workload.network), "dijkstra")
    } else {
        let (labels, report) = store::load_or_build(&workload.network);
        eprintln!("  labels: {:?}", report.source);
        (
            CachedOracle::with_labels(&workload.network, labels, 1_000_000, 10_000),
            "hub_labels",
        )
    };
    let config = SimConfig {
        vehicles,
        seed: args.seed,
        cruise_when_idle: true,
        ..SimConfig::default()
    };

    // ---- Single-shard reference ------------------------------------------
    // All runs share one oracle, so whoever goes first pays every distance
    // cache miss. An untimed warm-up keeps the per-k trips/sec comparable.
    Simulation::new(&workload.network, &oracle, config).run(&workload.trips);
    let t0 = Instant::now();
    let mut single = Simulation::new(&workload.network, &oracle, config);
    let single_report = single.run(&workload.trips);
    let single_wall = t0.elapsed().as_secs_f64();
    let single_tps = trips as f64 / single_wall.max(1e-9);
    let expect_numbers = report_numbers(&single_report);
    let expect_trace: Vec<RequestTrace> = single.trace().iter().copied().collect();
    let expect_fleet: Vec<u32> = single.vehicles().iter().map(|v| v.location()).collect();
    eprintln!(
        "  single-shard reference: {single_tps:>8.1} trips/s | assigned {} rejected {} | \
         violations {}",
        single_report.assigned, single_report.rejected, single_report.guarantee_violations
    );
    if single_report.guarantee_violations != 0 {
        eprintln!("shard_smoke: GATE FAILED: reference run violated the service guarantee");
        return ExitCode::FAILURE;
    }

    // ---- Sharded runs at every shard count -------------------------------
    let mut runs: Vec<ShardRun> = Vec::new();
    for &k in &SHARD_COUNTS {
        let partition = PartitionSpec::grow(&workload.network, k);
        let region_sizes = partition.region_sizes().to_vec();
        let boundary_fraction = partition.boundary_fraction();
        let fingerprint = partition.fingerprint();
        let t0 = Instant::now();
        let mut sharded = ShardedSimulation::new(&workload.network, &oracle, partition, config);
        let report = sharded.run(&workload.trips);
        let wall_seconds = t0.elapsed().as_secs_f64();
        let trips_per_sec = trips as f64 / wall_seconds.max(1e-9);

        let got_numbers = report_numbers(&report);
        let got_trace: Vec<RequestTrace> = sharded.trace().iter().copied().collect();
        let got_fleet: Vec<u32> = sharded.vehicles().iter().map(|v| v.location()).collect();
        let bit_identical =
            got_numbers == expect_numbers && got_trace == expect_trace && got_fleet == expect_fleet;
        let net = sharded.net_stats();
        eprintln!(
            "  k={k}: {trips_per_sec:>8.1} trips/s | boundary {:>5.1}% | migrations {:>5} \
             borrows {:>5} | boundary requests {:>4} | identical {}",
            boundary_fraction * 100.0,
            net.migrations,
            net.borrows,
            net.boundary_requests,
            bit_identical,
        );
        if !bit_identical {
            let which = if got_numbers != expect_numbers {
                "report"
            } else if got_trace != expect_trace {
                "traces"
            } else {
                "final fleet"
            };
            eprintln!(
                "shard_smoke: GATE FAILED: k={k} diverged from the single-shard reference \
                 ({which})"
            );
            return ExitCode::FAILURE;
        }
        if report.guarantee_violations != 0 {
            eprintln!("shard_smoke: GATE FAILED: k={k} violated the service guarantee");
            return ExitCode::FAILURE;
        }
        if k >= 2 && (net.migrations == 0 || net.boundary_requests == 0) {
            eprintln!(
                "shard_smoke: GATE FAILED: k={k} never crossed a region border \
                 (migrations {}, boundary requests {}) — the gate would be vacuous",
                net.migrations, net.boundary_requests
            );
            return ExitCode::FAILURE;
        }
        runs.push(ShardRun {
            k,
            wall_seconds,
            trips_per_sec,
            bit_identical,
            report,
            region_sizes,
            boundary_fraction,
            fingerprint,
            migrations: net.migrations,
            borrows: net.borrows,
            cross_commits: net.cross_commits,
            local_requests: net.local_requests,
            boundary_requests: net.boundary_requests,
        });
    }

    // ---- Artifact ---------------------------------------------------------
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"bench_shard/v1\",\n");
    s.push_str(&format!("  \"city\": \"{city_name}\",\n"));
    s.push_str(&format!(
        "  \"nodes\": {},\n",
        workload.network.node_count()
    ));
    s.push_str(&format!("  \"pool_trips\": {trips},\n"));
    s.push_str(&format!("  \"vehicles\": {vehicles},\n"));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"label_source\": \"{label_source}\",\n"));
    s.push_str(&format!(
        "  \"wall_seconds\": {:.1},\n",
        wall.elapsed().as_secs_f64()
    ));
    s.push_str(&format!(
        "  \"single_shard\": {{\"wall_seconds\": {:.3}, \"trips_per_sec\": {:.1}, \
         \"report\": {}}},\n",
        single_wall,
        single_tps,
        report_json(&single_report, "  ")
    ));
    s.push_str("  \"shards\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let sizes = run
            .region_sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"k\": {}, \"region_sizes\": [{sizes}], \"boundary_fraction\": {:.4}, \
             \"fingerprint\": \"{:#018x}\",\n     \"wall_seconds\": {:.3}, \
             \"trips_per_sec\": {:.1}, \"bit_identical\": {},\n     \"migrations\": {}, \
             \"borrows\": {}, \"cross_commits\": {}, \"local_requests\": {}, \
             \"boundary_requests\": {},\n     \"report\": {}}}",
            run.k,
            run.boundary_fraction,
            run.fingerprint,
            run.wall_seconds,
            run.trips_per_sec,
            run.bit_identical,
            run.migrations,
            run.borrows,
            run.cross_commits,
            run.local_requests,
            run.boundary_requests,
            report_json(&run.report, "     "),
        ));
        s.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(
        "  \"gates\": {\"bit_identity\": true, \"zero_guarantee_violations\": true, \
         \"broker_exercised\": true}\n",
    );
    s.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &s) {
        eprintln!("shard_smoke: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "shard_smoke: all gates held at k = 1/2/4/8; artifact written to {} ({:.1}s wall)",
        args.out,
        wall.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

//! `chaos_smoke`: the deterministic fault-injection gate CI runs.
//!
//! Drives the serve stack through a fixed ladder of seeded fault plans
//! under the synthetic [`ServiceModel::Fixed`] cost model (so every run is
//! reproducible bit-for-bit) and gates on the robustness contracts the
//! fault layer promises:
//!
//! 1. **Exact accounting under faults** — oracle latency spikes, metric
//!    sink saturation and torn checkpoint writes may degrade service, but
//!    `offered = admitted + shed` and `admitted = assigned + rejected`
//!    hold to the request, and the service guarantee is never violated.
//! 2. **Graceful degradation** — overload trips the planner-effort ladder
//!    (degraded ticks are observed) instead of blowing the run up, and
//!    every dispatch tick is attributed to exactly one effort level.
//! 3. **Crash-safe recovery** — a run killed mid-day by the fault plan
//!    resumes from (checkpoint + journal) to the bit-identical report of
//!    an uninterrupted run.
//! 4. **Store fallback** — an injected label-store IO fault degrades to a
//!    rebuild with the reason surfaced, never a panic.
//!
//! Writes `BENCH_chaos.json` (schema `bench_chaos/v1`); exits non-zero on
//! any gate failure.

use std::process::ExitCode;
use std::time::Instant;

use kinetic_core::FaultPlan;
use rideshare_bench::store;
use rideshare_serve::{
    resume_serve, PoissonArrivals, RecoveryConfig, ServeConfig, ServeLoop, ServeReport,
    ServiceModel, SloConfig,
};
use rideshare_sim::{SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::CachedOracle;

const USAGE: &str = "\
chaos_smoke: deterministic fault-injection gate over the serve stack

USAGE:
  chaos_smoke [--out <path>] [--seed <n>]

OPTIONS:
  --out <path>   artifact path [default: BENCH_chaos.json]
  --seed <n>     workload + arrival seed [default: 42]
  -h, --help     print this help
";

struct Args {
    out: String,
    seed: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            out: "BENCH_chaos.json".to_string(),
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--out" => args.out = value("--out")?,
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "could not parse --seed".to_string())?
                }
                "-h" | "--help" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
            }
        }
        Ok(args)
    }
}

const FLEET: usize = 15;
const POOL_TRIPS: usize = 200;
const DURATION_S: f64 = 60.0;

fn slo() -> SloConfig {
    SloConfig {
        queue_capacity: 256,
        max_queue_wait_seconds: 8.0,
        degrade_compute_budget_seconds: 0.1,
        recover_healthy_ticks: 2,
        ..SloConfig::default()
    }
}

fn serve_config(fault: FaultPlan) -> ServeConfig {
    ServeConfig {
        slo: slo(),
        // Synthetic cost model: the whole gate is a pure function of the
        // seeds, so a failure is always reproducible locally.
        model: ServiceModel::Fixed {
            tick_overhead_s: 0.02,
            per_request_s: 0.01,
        },
        record_batches: false,
        fault,
    }
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        vehicles: FLEET,
        seed,
        ..SimConfig::default()
    }
}

/// The accounting contracts every rung must keep, faults or not.
fn gate_accounting(name: &str, r: &ServeReport) -> Result<(), String> {
    if r.offered != r.admitted + r.shed_queue_full + r.shed_stale {
        return Err(format!(
            "{name}: offered {} != admitted {} + shed {}",
            r.offered,
            r.admitted,
            r.shed()
        ));
    }
    if r.admitted != r.assigned + r.rejected {
        return Err(format!(
            "{name}: admitted {} != assigned {} + rejected {}",
            r.admitted, r.assigned, r.rejected
        ));
    }
    if r.dispatch_full + r.dispatch_slack_pruned + r.dispatch_greedy != r.dispatch_ticks {
        return Err(format!(
            "{name}: per-level dispatch counts do not sum to dispatch_ticks"
        ));
    }
    if r.guarantee_violations != 0 {
        return Err(format!(
            "{name}: {} service-guarantee violations under faults",
            r.guarantee_violations
        ));
    }
    Ok(())
}

fn run_rung(
    workload: &Workload,
    oracle: &CachedOracle,
    seed: u64,
    rate: f64,
    duration_s: f64,
    fault: FaultPlan,
) -> ServeReport {
    let sim = Simulation::new(&workload.network, oracle, sim_config(seed));
    let mut serve = ServeLoop::new(sim, serve_config(fault));
    serve.run(PoissonArrivals::new(
        &workload.trips,
        rate,
        duration_s,
        seed,
    ))
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let wall = Instant::now();
    eprintln!(
        "chaos_smoke: small city, {POOL_TRIPS} pool trips, fleet {FLEET}, seed {}",
        args.seed
    );
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: POOL_TRIPS,
            ..DemandConfig::default()
        },
        args.seed,
    );
    let oracle = CachedOracle::without_labels(&workload.network);

    // ---- Fault ladder: calm, faulted, overloaded -------------------------
    let fault_spec = "seed=7,spike=0.15:1.0,sink=0.1,torn=0.5";
    let faults = match FaultPlan::parse(fault_spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("chaos_smoke: bad fault spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The overload rung compresses the calm rung's request volume into a
    // third of the horizon: every dispatch batch blows the compute budget,
    // so the ladder must trip, while total admitted work stays bounded
    // (the small fleet cannot absorb a *larger* volume without schedule
    // lengths — and kinetic-insertion cost — exploding).
    let rungs: Vec<(&str, &str, f64, f64, FaultPlan)> = vec![
        ("calm", "none", 4.0, DURATION_S, FaultPlan::none()),
        ("faulted", fault_spec, 4.0, DURATION_S, faults),
        ("overload", fault_spec, 12.0, DURATION_S / 3.0, faults),
    ];
    let mut reports: Vec<(&str, &str, f64, ServeReport)> = Vec::new();
    for &(name, spec, rate, duration_s, fault) in &rungs {
        let report = run_rung(&workload, &oracle, args.seed, rate, duration_s, fault);
        eprintln!(
            "  rung {name:<9} rate {rate:>5.1} | offered {:>5} shed {:>4} | degraded {:>3} ticks \
             (full {}/pruned {}/greedy {}) | spikes {:>3} dropped {:>4} | violations {}",
            report.offered,
            report.shed(),
            report.degraded_ticks,
            report.dispatch_full,
            report.dispatch_slack_pruned,
            report.dispatch_greedy,
            report.fault_oracle_spikes,
            report.sink_dropped_events,
            report.guarantee_violations,
        );
        if let Err(msg) = gate_accounting(name, &report) {
            eprintln!("chaos_smoke: GATE FAILED: {msg}");
            return ExitCode::FAILURE;
        }
        reports.push((name, spec, rate, report));
    }
    // The faulted rung must actually have injected something, and the
    // overloaded rung must have tripped the degradation ladder — otherwise
    // the gate is vacuous.
    if reports[1].3.fault_oracle_spikes == 0 || reports[1].3.sink_dropped_events == 0 {
        eprintln!("chaos_smoke: GATE FAILED: faulted rung injected nothing");
        return ExitCode::FAILURE;
    }
    if reports[2].3.degraded_ticks == 0 {
        eprintln!("chaos_smoke: GATE FAILED: overload rung never degraded");
        return ExitCode::FAILURE;
    }
    if reports[0].3.degraded_ticks != 0 {
        eprintln!("chaos_smoke: GATE FAILED: calm rung degraded");
        return ExitCode::FAILURE;
    }

    // ---- Kill / recover equivalence --------------------------------------
    let every = 8;
    let kill_tick = 25;
    let rec_base = std::path::PathBuf::from("target").join("chaos-smoke");
    let ref_rc = RecoveryConfig {
        dir: rec_base.join("reference"),
        checkpoint_every_ticks: every,
    };
    let kill_rc = RecoveryConfig {
        dir: rec_base.join("killed"),
        checkpoint_every_ticks: every,
    };
    let run_recoverable = |fault: FaultPlan, rc: &RecoveryConfig| {
        let sim = Simulation::new(&workload.network, &oracle, sim_config(args.seed));
        let mut serve = ServeLoop::new(sim, serve_config(fault));
        serve.run_recoverable(
            PoissonArrivals::new(&workload.trips, 4.0, DURATION_S, args.seed),
            rc,
        )
    };
    let reference = match run_recoverable(faults, &ref_rc) {
        Ok(Some(r)) => r,
        Ok(None) => unreachable!("no kill configured"),
        Err(e) => {
            eprintln!("chaos_smoke: reference recoverable run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let killer = FaultPlan {
        kill_at_tick: Some(kill_tick),
        ..faults
    };
    match run_recoverable(killer, &kill_rc) {
        Ok(None) => {}
        Ok(Some(_)) => {
            eprintln!("chaos_smoke: GATE FAILED: kill at tick {kill_tick} never fired");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("chaos_smoke: killed run failed before the kill: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut recovered = match resume_serve(
        &workload.network,
        &oracle,
        sim_config(args.seed),
        serve_config(killer),
        PoissonArrivals::new(&workload.trips, 4.0, DURATION_S, args.seed),
        &kill_rc,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos_smoke: GATE FAILED: recovery failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !recovered.recovered {
        eprintln!("chaos_smoke: GATE FAILED: resumed report not marked recovered");
        return ExitCode::FAILURE;
    }
    recovered.recovered = false;
    let recovery_matched = recovered == reference;
    if !recovery_matched {
        eprintln!(
            "chaos_smoke: GATE FAILED: recovered run diverged from the uninterrupted \
             reference\n  reference: {reference:?}\n  recovered: {recovered:?}"
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "  recovery: killed at tick {kill_tick}, resumed from checkpoint+journal, \
         report bit-identical to uninterrupted run"
    );

    // ---- Store fault fallback --------------------------------------------
    std::env::set_var(
        store::CACHE_DIR_ENV,
        rec_base.join("label-cache").as_os_str(),
    );
    // Prime the cache, then prove the injected IO fault degrades to a
    // rebuild with the reason surfaced.
    let (_, primed) = store::load_or_build(&workload.network);
    let (_, faulted_store) = store::load_or_build_with_fault(
        &workload.network,
        &FaultPlan {
            store_io_errors: true,
            ..FaultPlan::none()
        },
    );
    std::env::remove_var(store::CACHE_DIR_ENV);
    let store_reason = faulted_store.fallback_reason.clone().unwrap_or_default();
    if faulted_store.source != store::LabelSource::Built || store_reason.is_empty() {
        eprintln!(
            "chaos_smoke: GATE FAILED: injected store fault did not surface a rebuild \
             reason: {faulted_store:?}"
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "  store: primed ({:?}), injected IO fault fell back to rebuild ({store_reason})",
        primed.source
    );

    // ---- Artifact ---------------------------------------------------------
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"bench_chaos/v1\",\n");
    s.push_str("  \"city\": \"small\",\n");
    s.push_str(&format!("  \"fleet\": {FLEET},\n"));
    s.push_str(&format!("  \"pool_trips\": {POOL_TRIPS},\n"));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"duration_seconds\": {DURATION_S},\n"));
    s.push_str("  \"service_model\": \"fixed(tick_overhead=0.02s, per_request=0.01s)\",\n");
    s.push_str(&format!(
        "  \"wall_seconds\": {:.1},\n",
        wall.elapsed().as_secs_f64()
    ));
    s.push_str("  \"rungs\": [\n");
    for (i, (name, spec, rate, report)) in reports.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"fault_plan\": \"{spec}\", \"report\": "
        ));
        s.push_str(&report.json_object(Some(*rate), "    "));
        s.push('}');
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"recovery\": {{\"fault_plan\": \"{fault_spec},kill={kill_tick}\", \
         \"checkpoint_every_ticks\": {every}, \"kill_tick\": {kill_tick}, \
         \"recovered_matches_reference\": {recovery_matched}, \"report\": "
    ));
    s.push_str(&recovered.json_object(Some(4.0), "  "));
    s.push_str("},\n");
    s.push_str(&format!(
        "  \"store_fault\": {{\"injected\": true, \"fallback_source\": \"built\", \
         \"fallback_reason\": \"{store_reason}\"}}\n"
    ));
    s.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &s) {
        eprintln!("chaos_smoke: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "chaos_smoke: all gates held; artifact written to {} ({:.1}s wall)",
        args.out,
        wall.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

//! Figure 7 — tree-variant comparison (basic, slack-time, hotspot).
//!
//! * panel (a): ART versus number of scheduled requests (capacity 6,
//!   2,000-server default fleet);
//! * panel (b): ACRT versus the constraint sweep;
//! * panel (c): ACRT versus fleet size.
//!
//! Run with `cargo run --release -p rideshare-bench --bin fig7`.

use kinetic_core::Constraints;
use rideshare_bench::{
    art_at, constraint_sweep, fmt_ms, print_table, tree_variants, Experiment, HarnessArgs,
};

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Figure 7 — tree algorithm comparison ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let constraints = Constraints::paper_default();
    let capacity = 6;
    let cap = scale.requests_per_point();

    if args.wants("a") {
        let fleet = scale.default_tree_fleet();
        let mut header = vec!["variant".to_string()];
        for k in 0..=6 {
            header.push(format!("ART@{k} (ms)"));
        }
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let report = exp.run_point(&oracle, planner, constraints, fleet, capacity, cap);
            let mut row = vec![name.to_string()];
            for k in 0..=6 {
                row.push(
                    art_at(&report, k)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 7(a): ART (ms) vs number of scheduled requests — 10min/20%, capacity 6",
            &header,
            &rows,
        );
    }

    if args.wants("b") {
        let fleet = scale.default_tree_fleet();
        let sweep = constraint_sweep();
        let mut header = vec!["variant".to_string()];
        header.extend(sweep.iter().map(|(n, _)| n.clone()));
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let mut row = vec![name.to_string()];
            for (_, c) in &sweep {
                let report = exp.run_point(&oracle, planner, *c, fleet, capacity, cap);
                row.push(fmt_ms(report.acrt_ms));
            }
            rows.push(row);
        }
        print_table(
            "Fig 7(b): ACRT (ms) vs constraints — capacity 6",
            &header,
            &rows,
        );
    }

    if args.wants("c") {
        let sweep = scale.tree_fleet_sweep();
        let mut header = vec!["variant".to_string()];
        header.extend(sweep.iter().map(|f| format!("{f} veh")));
        let mut rows = Vec::new();
        for (name, planner) in tree_variants() {
            let mut row = vec![name.to_string()];
            for &fleet in &sweep {
                let report = exp.run_point(&oracle, planner, constraints, fleet, capacity, cap);
                row.push(fmt_ms(report.acrt_ms));
            }
            rows.push(row);
        }
        print_table(
            "Fig 7(c): ACRT (ms) vs number of servers — 10min/20%, capacity 6",
            &header,
            &rows,
        );
    }
}

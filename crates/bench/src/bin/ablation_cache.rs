//! Ablation: the shortest-path LRU caches.
//!
//! The paper stresses that "the shortest path algorithm is called very
//! frequently and can be the bottleneck if not implemented efficiently" and
//! adds two LRU caches. This harness runs the same simulation with the
//! distance cache disabled and at several capacities and reports the
//! matching latency together with the cache hit rate.
//!
//! Run with `cargo run --release -p rideshare-bench --bin ablation_cache`.

use kinetic_core::{Constraints, KineticConfig, PlannerKind};
use rideshare_bench::{fmt_ms, print_table, Experiment, HarnessArgs, Scale};
use rideshare_sim::{SimConfig, Simulation};
use roadnet::{CachedOracle, DistanceOracle, OracleBackend};

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Ablation: distance/path LRU caches ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let fleet = scale.default_tree_fleet();
    let cap = scale.requests_per_point();

    let cache_sizes: &[(&str, usize, usize)] = &[
        ("off", 0, 0),
        ("10k / 1k", 10_000, 1_000),
        ("100k / 5k", 100_000, 5_000),
        ("1M / 10k", 1_000_000, 10_000),
    ];
    let backend = match scale {
        Scale::Paper => OracleBackend::HubLabels,
        _ => OracleBackend::Dijkstra,
    };
    let mut rows = Vec::new();
    for &(label, dist_cap, path_cap) in cache_sizes {
        let oracle = CachedOracle::with_options(&exp.workload.network, backend, dist_cap, path_cap);
        let config = SimConfig {
            vehicles: fleet,
            capacity: 6,
            constraints: Constraints::paper_default(),
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            max_requests: Some(cap),
            seed: args.seed,
            cruise_when_idle: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&exp.workload.network, &oracle, config);
        let report = sim.run(&exp.workload.trips);
        let stats = oracle.stats();
        rows.push(vec![
            label.to_string(),
            fmt_ms(report.acrt_ms),
            format!("{:.1}", 100.0 * stats.distance_hit_rate()),
            stats.distance_queries.to_string(),
            format!("{:.1}", 100.0 * report.service_rate()),
        ]);
        let _ = &oracle as &dyn DistanceOracle;
    }
    print_table(
        "Cache size sweep — slack tree, capacity 6",
        &[
            "cache (dist/path)".into(),
            "ACRT (ms)".into(),
            "dist hit %".into(),
            "dist queries".into(),
            "served %".into(),
        ],
        &rows,
    );
}

//! Figure 8 — ART for four on-board customer requests, four algorithms.
//!
//! * panel (a): ART at four scheduled requests versus the constraint sweep;
//! * panel (b): ART at four scheduled requests versus fleet size.
//!
//! Run with `cargo run --release -p rideshare-bench --bin fig8`.

use kinetic_core::Constraints;
use rideshare_bench::{
    art_at, constraint_sweep, fmt_ms, four_algorithms, print_table, Experiment, HarnessArgs, Scale,
};

fn request_cap(algorithm: &str, scale: Scale) -> usize {
    let base = scale.requests_per_point();
    match (algorithm, scale) {
        ("mip", Scale::Quick) => base.min(200),
        ("mip", Scale::Smoke) => base.min(40),
        _ => base,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let scale = args.scale;
    println!(
        "# Figure 8 — ART at four requests ({scale:?} scale, seed {})",
        args.seed
    );
    let exp = Experiment::new(scale, args.seed);
    let oracle = exp.oracle(scale);
    let capacity = 4;
    // A smaller fleet than Fig. 6 so that vehicles actually accumulate four
    // simultaneous requests often enough to measure.
    let fleet = scale.default_tree_fleet();

    if args.wants("a") {
        let sweep = constraint_sweep();
        let mut header = vec!["algorithm".to_string()];
        header.extend(sweep.iter().map(|(n, _)| n.clone()));
        let mut rows = Vec::new();
        for (name, planner) in four_algorithms() {
            let cap = request_cap(name, scale);
            let mut row = vec![name.to_string()];
            for (_, c) in &sweep {
                let report = exp.run_point(&oracle, planner, *c, fleet, capacity, cap);
                row.push(
                    art_at(&report, 4)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 8(a): ART (ms) at 4 requests vs constraints — capacity 4",
            &header,
            &rows,
        );
    }

    if args.wants("b") {
        let constraints = Constraints::paper_default();
        let sweep = scale.fleet_sweep();
        let mut header = vec!["algorithm".to_string()];
        header.extend(sweep.iter().map(|f| format!("{f} veh")));
        let mut rows = Vec::new();
        for (name, planner) in four_algorithms() {
            let cap = request_cap(name, scale);
            let mut row = vec![name.to_string()];
            for &fleet in &sweep {
                let report = exp.run_point(&oracle, planner, constraints, fleet, capacity, cap);
                row.push(
                    art_at(&report, 4)
                        .map(fmt_ms)
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            rows.push(row);
        }
        print_table(
            "Fig 8(b): ART (ms) at 4 requests vs number of servers — 10min/20%, capacity 4",
            &header,
            &rows,
        );
    }
}

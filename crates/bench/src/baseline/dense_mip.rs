//! Frozen copy of the seed's dense two-phase simplex + branch-and-bound
//! MIP solver.
//!
//! `rideshare-mip` replaced this implementation with a sparse
//! bounded-variable revised simplex and dual-simplex warm starts. The
//! `bench_summary` MIP section and the equivalence proptests measure the
//! new solver *against this frozen baseline*, so — like the hub-label seed
//! pipeline next door — it is kept faithful to the seed: a dense tableau
//! with explicit upper-bound rows, rebuilt and resolved from scratch at
//! every branch-and-bound node. It must not borrow improvements from
//! `rideshare_mip::simplex`.
//!
//! It consumes the very same [`Model`] instance the production solver
//! sees, through [`Model::var_data`] / [`Model::constraint_data`], so the
//! two solvers can never drift apart on model-building details.

use rideshare_mip::{ConstraintOp, Model, Sense, SolveError, VarKind};

const EPS: f64 = 1e-9;
const INT_TOL: f64 = 1e-6;

/// Outcome of a dense LP relaxation solve (internal minimisation sense).
enum DenseLpOutcome {
    Optimal { objective: f64, values: Vec<f64> },
    Infeasible,
    Unbounded,
}

/// Result of a successful dense MIP solve.
#[derive(Debug, Clone)]
pub struct DenseSolution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Value of every variable, indexed like the model's.
    pub values: Vec<f64>,
    /// Whether the node budget sufficed to prove optimality.
    pub proven_optimal: bool,
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: u64,
}

/// Solves `model` with the frozen dense solver (LPs and MIPs alike).
pub fn solve_dense(model: &Model, max_nodes: u64) -> Result<DenseSolution, SolveError> {
    let external = |internal: f64| match model.sense() {
        Sense::Minimize => internal,
        Sense::Maximize => -internal,
    };
    if !model.is_mip() {
        return match solve_lp(&StandardLp::from_model(model, &[])?) {
            DenseLpOutcome::Optimal { objective, values } => Ok(DenseSolution {
                objective: external(objective),
                values,
                proven_optimal: true,
                nodes_explored: 0,
            }),
            DenseLpOutcome::Infeasible => Err(SolveError::Infeasible),
            DenseLpOutcome::Unbounded => Err(SolveError::Unbounded),
        };
    }

    let int_vars: Vec<usize> = (0..model.num_vars())
        .filter(|&i| model.var_data(i).3 == VarKind::Integer)
        .collect();
    let mut nodes_explored = 0u64;
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    // Node = (accumulated bound overrides, parent LP bound).
    type Node = (Vec<(usize, f64, f64)>, f64);
    let mut stack: Vec<Node> = vec![(Vec::new(), f64::NEG_INFINITY)];
    let mut saw_unbounded_root = false;
    let mut root_infeasible = true;

    while let Some((bounds, parent_bound)) = stack.pop() {
        if nodes_explored >= max_nodes {
            break;
        }
        if let Some((best, _)) = &incumbent {
            if parent_bound >= *best - 1e-9 {
                continue;
            }
        }
        nodes_explored += 1;
        let outcome = solve_lp(&StandardLp::from_model(model, &bounds)?);
        let (bound, values) = match outcome {
            DenseLpOutcome::Infeasible => continue,
            DenseLpOutcome::Unbounded => {
                if bounds.is_empty() {
                    saw_unbounded_root = true;
                }
                continue;
            }
            DenseLpOutcome::Optimal { objective, values } => (objective, values),
        };
        root_infeasible = false;
        if let Some((best, _)) = &incumbent {
            if bound >= *best - 1e-9 {
                continue;
            }
        }
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = INT_TOL;
        for &v in &int_vars {
            let x = values[v];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, x));
            }
        }
        match branch_var {
            None => {
                let mut vals = values;
                for &v in &int_vars {
                    vals[v] = vals[v].round();
                }
                if incumbent.as_ref().is_none_or(|(best, _)| bound < *best) {
                    incumbent = Some((bound, vals));
                }
            }
            Some((v, x)) => {
                let floor = x.floor();
                let mut up = bounds.clone();
                up.push((v, floor + 1.0, f64::INFINITY));
                stack.push((up, bound));
                let mut down = bounds.clone();
                down.push((v, f64::NEG_INFINITY, floor));
                stack.push((down, bound));
            }
        }
    }

    match incumbent {
        Some((internal_obj, values)) => Ok(DenseSolution {
            objective: external(internal_obj),
            values,
            proven_optimal: nodes_explored < max_nodes && stack.is_empty(),
            nodes_explored,
        }),
        None => {
            if saw_unbounded_root {
                Err(SolveError::Unbounded)
            } else if nodes_explored >= max_nodes && !root_infeasible {
                Err(SolveError::BudgetExhausted)
            } else {
                Err(SolveError::Infeasible)
            }
        }
    }
}

/// The seed's standard form: shifted non-negative variables with explicit
/// rows for variable upper bounds.
struct StandardLp {
    n: usize,
    shift: Vec<f64>,
    cost: Vec<f64>,
    cost_const: f64,
    rows: Vec<(Vec<f64>, ConstraintOp, f64)>,
    trivially_infeasible: bool,
}

impl StandardLp {
    fn from_model(model: &Model, extra_bounds: &[(usize, f64, f64)]) -> Result<Self, SolveError> {
        let n = model.num_vars();
        let mut lb = Vec::with_capacity(n);
        let mut ub = Vec::with_capacity(n);
        let mut obj = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u, o, _) = model.var_data(i);
            lb.push(l);
            ub.push(u);
            obj.push(o);
        }
        for &(i, l, u) in extra_bounds {
            if i >= n {
                return Err(SolveError::InvalidModel(format!(
                    "bound override for unknown variable {i}"
                )));
            }
            lb[i] = lb[i].max(l);
            ub[i] = ub[i].min(u);
        }
        let trivially_infeasible = (0..n).any(|i| lb[i] > ub[i] + EPS);

        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let cost: Vec<f64> = obj.iter().map(|&c| sign * c).collect();
        let cost_const: f64 = cost.iter().zip(lb.iter()).map(|(c, l)| c * l).sum();

        let mut rows = Vec::new();
        for ci in 0..model.num_constraints() {
            let (terms, op, rhs) = model.constraint_data(ci);
            let mut coef = vec![0.0; n];
            let mut shift_amount = 0.0;
            for &(v, a) in terms {
                coef[v] += a;
            }
            for (i, a) in coef.iter().enumerate() {
                shift_amount += a * lb[i];
            }
            rows.push((coef, op, rhs - shift_amount));
        }
        // Upper-bound rows for shifted variables: x' <= ub - lb.
        for i in 0..n {
            if ub[i].is_finite() {
                let mut coef = vec![0.0; n];
                coef[i] = 1.0;
                rows.push((coef, ConstraintOp::Le, ub[i] - lb[i]));
            }
        }
        Ok(StandardLp {
            n,
            shift: lb,
            cost,
            cost_const,
            rows,
            trivially_infeasible,
        })
    }
}

struct Tableau {
    a: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    cols: usize,
    artificial: Vec<bool>,
    m: usize,
}

fn solve_lp(lp: &StandardLp) -> DenseLpOutcome {
    if lp.trivially_infeasible {
        return DenseLpOutcome::Infeasible;
    }
    let n = lp.n;
    let m = lp.rows.len();
    if m == 0 {
        if lp.cost.iter().any(|&c| c < -EPS) {
            return DenseLpOutcome::Unbounded;
        }
        return DenseLpOutcome::Optimal {
            objective: lp.cost_const,
            values: lp.shift.clone(),
        };
    }

    let mut slack_cols = 0usize;
    let mut artificial_cols = 0usize;
    for (_, op, rhs) in &lp.rows {
        let flipped = *rhs < 0.0;
        match effective_op(*op, flipped) {
            ConstraintOp::Le => slack_cols += 1,
            ConstraintOp::Ge => {
                slack_cols += 1;
                artificial_cols += 1;
            }
            ConstraintOp::Eq => artificial_cols += 1,
        }
    }
    let cols = n + slack_cols + artificial_cols;
    let mut t = Tableau {
        a: vec![vec![0.0; cols]; m],
        rhs: vec![0.0; m],
        basis: vec![usize::MAX; m],
        cols,
        artificial: vec![false; cols],
        m,
    };

    let mut next_slack = n;
    let mut next_artificial = n + slack_cols;
    for (i, (coef, op, rhs)) in lp.rows.iter().enumerate() {
        let flipped = *rhs < 0.0;
        let sign = if flipped { -1.0 } else { 1.0 };
        for (j, &c) in coef.iter().enumerate().take(n) {
            t.a[i][j] = sign * c;
        }
        t.rhs[i] = sign * rhs;
        match effective_op(*op, flipped) {
            ConstraintOp::Le => {
                t.a[i][next_slack] = 1.0;
                t.basis[i] = next_slack;
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                t.a[i][next_slack] = -1.0;
                next_slack += 1;
                t.a[i][next_artificial] = 1.0;
                t.artificial[next_artificial] = true;
                t.basis[i] = next_artificial;
                next_artificial += 1;
            }
            ConstraintOp::Eq => {
                t.a[i][next_artificial] = 1.0;
                t.artificial[next_artificial] = true;
                t.basis[i] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    if artificial_cols > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for (c, &artificial) in phase1_cost.iter_mut().zip(t.artificial.iter()) {
            if artificial {
                *c = 1.0;
            }
        }
        match optimize(&mut t, &phase1_cost, true) {
            SimplexResult::Optimal(obj) => {
                if obj > 1e-6 {
                    return DenseLpOutcome::Infeasible;
                }
            }
            SimplexResult::Unbounded => return DenseLpOutcome::Infeasible,
        }
        for i in 0..m {
            if t.artificial[t.basis[i]] {
                if let Some(j) = (0..cols).find(|&j| !t.artificial[j] && t.a[i][j].abs() > 1e-7) {
                    pivot(&mut t, i, j);
                }
            }
        }
    }

    let mut phase2_cost = vec![0.0; cols];
    phase2_cost[..n].copy_from_slice(&lp.cost);
    match optimize(&mut t, &phase2_cost, false) {
        SimplexResult::Unbounded => DenseLpOutcome::Unbounded,
        SimplexResult::Optimal(obj) => {
            let mut values = lp.shift.clone();
            for i in 0..m {
                let b = t.basis[i];
                if b < n {
                    values[b] += t.rhs[i];
                }
            }
            DenseLpOutcome::Optimal {
                objective: obj + lp.cost_const,
                values,
            }
        }
    }
}

fn effective_op(op: ConstraintOp, flipped: bool) -> ConstraintOp {
    if !flipped {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

enum SimplexResult {
    Optimal(f64),
    Unbounded,
}

fn optimize(t: &mut Tableau, cost: &[f64], phase1: bool) -> SimplexResult {
    let m = t.m;
    let cols = t.cols;
    let reduced = |t: &Tableau, j: usize| -> f64 {
        let mut r = cost[j];
        for i in 0..m {
            let cb = cost[t.basis[i]];
            if cb != 0.0 {
                r -= cb * t.a[i][j];
            }
        }
        r
    };

    let max_iters = 50 * (m + cols) + 200;
    let bland_after = 10 * (m + cols) + 50;
    for iter in 0..max_iters {
        let use_bland = iter >= bland_after;
        let mut entering: Option<usize> = None;
        let mut best = -1e-7;
        for j in 0..cols {
            if !phase1 && t.artificial[j] {
                continue;
            }
            let r = reduced(t, j);
            if use_bland {
                if r < -1e-7 {
                    entering = Some(j);
                    break;
                }
            } else if r < best {
                best = r;
                entering = Some(j);
            }
        }
        let Some(e) = entering else {
            let obj: f64 = (0..m).map(|i| cost[t.basis[i]] * t.rhs[i]).sum();
            return SimplexResult::Optimal(obj);
        };
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t.a[i][e] > 1e-9 {
                let ratio = t.rhs[i] / t.a[i][e];
                if ratio < best_ratio - 1e-12
                    || (use_bland
                        && (ratio - best_ratio).abs() <= 1e-12
                        && leave.is_some_and(|l| t.basis[i] < t.basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return SimplexResult::Unbounded;
        };
        pivot(t, l, e);
    }
    let obj: f64 = (0..m).map(|i| cost[t.basis[i]] * t.rhs[i]).sum();
    SimplexResult::Optimal(obj)
}

fn pivot(t: &mut Tableau, row: usize, col: usize) {
    let p = t.a[row][col];
    debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
    let inv = 1.0 / p;
    for j in 0..t.cols {
        t.a[row][j] *= inv;
    }
    t.rhs[row] *= inv;
    t.a[row][col] = 1.0;
    for i in 0..t.m {
        if i == row {
            continue;
        }
        let factor = t.a[i][col];
        if factor.abs() < 1e-12 {
            continue;
        }
        for j in 0..t.cols {
            t.a[i][j] -= factor * t.a[row][j];
        }
        t.rhs[i] -= factor * t.rhs[row];
        t.a[i][col] = 0.0;
    }
    t.basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rideshare_mip::Sense;

    #[test]
    fn dense_baseline_matches_production_on_a_knapsack() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0, "a");
        let b = m.add_binary(13.0, "b");
        let c = m.add_binary(7.0, "c");
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], ConstraintOp::Le, 6.0);
        let dense = solve_dense(&m, 200_000).unwrap();
        let sparse = m.solve().unwrap();
        assert!((dense.objective - 20.0).abs() < 1e-6);
        assert!((dense.objective - sparse.objective).abs() < 1e-6);
        assert!(dense.proven_optimal);
    }

    #[test]
    fn dense_baseline_reports_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary(1.0, "a");
        let b = m.add_binary(1.0, "b");
        m.add_constraint(&[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(
            solve_dense(&m, 200_000).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn dense_baseline_solves_pure_lps() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0, VarKind::Continuous, "x");
        let y = m.add_var(0.0, f64::INFINITY, 5.0, VarKind::Continuous, "y");
        m.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], ConstraintOp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let dense = solve_dense(&m, 1).unwrap();
        assert!((dense.objective - 36.0).abs() < 1e-6);
    }
}

//! Shared infrastructure for the experiment harnesses.
//!
//! Every figure and table of the paper's evaluation section has a binary in
//! `src/bin/` that reruns the corresponding sweep and prints the same series
//! the paper plots. This library holds the pieces those binaries share:
//! scale presets (the paper's full Shanghai-scale parameters and a scaled
//! "quick" preset that finishes on a laptop), the algorithm line-ups, the
//! simulation runner and plain-text table formatting.
//!
//! Absolute numbers will differ from the paper (different hardware,
//! different — synthetic — workload); EXPERIMENTS.md records which *shapes*
//! each harness is expected to reproduce (who wins, by roughly what factor,
//! where the curves break off).

pub mod baseline;
pub mod store;

use kinetic_core::{Constraints, KineticConfig, PlannerKind, SolverKind};
use rideshare_sim::{SimConfig, SimReport, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::{CachedOracle, OracleBackend, ShardedOracle};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny run for smoke-testing a harness (seconds).
    Smoke,
    /// Default: a 50×50 synthetic city, a few thousand trips, fleet sizes
    /// scaled to one tenth of the paper's — finishes in minutes and
    /// preserves every qualitative trend.
    Quick,
    /// The paper's parameters on the Shanghai-scale synthetic city. Only for
    /// long unattended runs.
    Paper,
}

impl Scale {
    /// Parses `--scale` values.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The city preset for this scale.
    pub fn city(&self) -> CityConfig {
        match self {
            Scale::Smoke => CityConfig::small(),
            Scale::Quick => CityConfig::medium(),
            Scale::Paper => CityConfig::shanghai_scale(),
        }
    }

    /// Number of trip requests in the workload.
    pub fn trips(&self) -> usize {
        match self {
            Scale::Smoke => 150,
            Scale::Quick => 5_000,
            Scale::Paper => 432_327,
        }
    }

    /// Length of the simulated demand window in seconds. The paper replays a
    /// full day; the scaled presets compress demand into a shorter window so
    /// that the processed prefix of requests still exercises ridesharing
    /// (several concurrent requests per vehicle).
    pub fn span_seconds(&self) -> f64 {
        match self {
            Scale::Smoke => 3_600.0,
            Scale::Quick => 3.0 * 3_600.0,
            Scale::Paper => 24.0 * 3_600.0,
        }
    }

    /// Fleet sizes standing in for the paper's Table I sweep
    /// (1,000 / 2,000 / 5,000 / 10,000 / 20,000 servers).
    pub fn fleet_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![10, 20, 40],
            Scale::Quick => vec![100, 200, 500, 1_000, 2_000],
            Scale::Paper => vec![1_000, 2_000, 5_000, 10_000, 20_000],
        }
    }

    /// Fleet sizes standing in for the paper's Table II sweep
    /// (500 / 1,000 / 2,000 / 5,000 / 10,000 servers).
    pub fn tree_fleet_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![5, 10, 20],
            Scale::Quick => vec![50, 100, 200, 500, 1_000],
            Scale::Paper => vec![500, 1_000, 2_000, 5_000, 10_000],
        }
    }

    /// The default fleet size for this scale (the paper's default is 10,000
    /// for the four-algorithm comparison and 2,000 for the tree comparison).
    pub fn default_fleet(&self) -> usize {
        match self {
            Scale::Smoke => 20,
            Scale::Quick => 1_000,
            Scale::Paper => 10_000,
        }
    }

    /// Default fleet size for the tree-variant comparison.
    pub fn default_tree_fleet(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Quick => 200,
            Scale::Paper => 2_000,
        }
    }

    /// Number of requests actually simulated per sweep point (a cap so that
    /// the slow baselines finish; the kinetic variants could do far more).
    pub fn requests_per_point(&self) -> usize {
        match self {
            Scale::Smoke => 100,
            Scale::Quick => 1_500,
            Scale::Paper => 432_327,
        }
    }

    /// Distance-cache capacity (entries) for this scale's oracle.
    ///
    /// Sized from the PR 3 cache sweep (recorded in `BENCH_hublabel.json`):
    /// on a dispatch-like stream over a 40×40 grid the hit rate saturates
    /// by 10k entries and larger capacities buy nothing. Smoke uses that
    /// saturation point directly; quick adds headroom for its 2.5×-larger
    /// network; paper scales the budget with the network (122k vertices,
    /// 10k vehicles' worth of concurrent locality) instead of the
    /// hard-coded 2M every scale used to get.
    pub fn distance_cache_entries(&self) -> usize {
        match self {
            Scale::Smoke => 10_000,
            Scale::Quick => 50_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Path-cache capacity (entries) for this scale's oracle. Paths are
    /// only queried when a vehicle starts driving a leg, so the cache is
    /// kept an order of magnitude smaller than the distance cache.
    pub fn path_cache_entries(&self) -> usize {
        match self {
            Scale::Smoke => 2_000,
            Scale::Quick => 10_000,
            Scale::Paper => 50_000,
        }
    }

    /// Cache shard count for the thread-safe oracle. The sweep showed
    /// sharding costs at most 0.1% hit rate, so paper scale shards
    /// aggressively (4M entries / 64 shards = 62.5k per shard — still far
    /// above the per-shard saturation point).
    pub fn oracle_shards(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 16,
            Scale::Paper => 64,
        }
    }

    /// Length of one metrics window in seconds: the simulated span divided
    /// into 24 equal buckets, so every scale reports the same bucket count
    /// and the paper scale's windows are exactly the hours of its
    /// simulated day.
    pub fn window_seconds(&self) -> f64 {
        self.span_seconds() / Self::WINDOWS_PER_RUN as f64
    }

    /// Number of metrics windows per replay at every scale.
    pub const WINDOWS_PER_RUN: usize = 24;

    /// Wall-clock budget (seconds) for one sweep point of the capacity
    /// sweep (Fig. 9(c)), standing in for the paper's 3 GB memory cap:
    /// a variant exceeding it "did not finish" and larger capacities are
    /// skipped. One simulated hour of budget at paper scale; the scaled
    /// presets get proportionally less (floored so smoke still allows a
    /// few slow points).
    pub fn point_budget_seconds(&self) -> f64 {
        match self {
            Scale::Smoke => 20.0,
            Scale::Quick => 180.0,
            Scale::Paper => 3_600.0,
        }
    }

    /// Request cap for the capacity sweep (Fig. 9(c)): the basic tree at
    /// capacity 16 is orders of magnitude slower per request, so the
    /// scaled presets cut the per-point request count instead of letting
    /// one cell consume the whole budget.
    pub fn capacity_sweep_requests(&self) -> usize {
        match self {
            Scale::Smoke => self.requests_per_point(),
            _ => self.requests_per_point().min(600),
        }
    }
}

/// The constraint sweep of Tables I and II: 5 min/10% … 25 min/50%.
pub fn constraint_sweep() -> Vec<(String, Constraints)> {
    (0..5)
        .map(|i| {
            let c = Constraints::paper_setting(i);
            (format!("{}min/{}%", (i + 1) * 5, (i + 1) * 10), c)
        })
        .collect()
}

/// The four algorithms of Fig. 6/8: brute force, branch and bound, MIP and
/// the (slack-time) kinetic tree.
pub fn four_algorithms() -> Vec<(&'static str, PlannerKind)> {
    vec![
        ("brute-force", PlannerKind::Solver(SolverKind::BruteForce)),
        ("branch-bound", PlannerKind::Solver(SolverKind::BranchBound)),
        ("mip", PlannerKind::Solver(SolverKind::Mip)),
        ("kinetic-tree", PlannerKind::Kinetic(KineticConfig::slack())),
    ]
}

/// The three tree variants of Fig. 7/9.
pub fn tree_variants() -> Vec<(&'static str, PlannerKind)> {
    vec![
        ("tree-basic", PlannerKind::Kinetic(KineticConfig::basic())),
        ("tree-slack", PlannerKind::Kinetic(KineticConfig::slack())),
        (
            "tree-hotspot",
            PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        ),
    ]
}

/// A generated workload together with its distance oracle, shared across the
/// sweep points of one experiment.
pub struct Experiment {
    /// The generated workload (network + trips).
    pub workload: Workload,
    /// Random seed used everywhere downstream.
    pub seed: u64,
}

impl Experiment {
    /// Builds the workload for a scale.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let demand = DemandConfig {
            trips: scale.trips(),
            span_seconds: scale.span_seconds(),
            ..DemandConfig::default()
        };
        let workload = Workload::generate(&scale.city(), &demand, seed);
        Experiment { workload, seed }
    }

    /// Builds the distance oracle for this experiment's network. Hub labels
    /// pay off for repeated queries but cost construction time, so the
    /// smallest scale skips them; the label-using scales go through the
    /// on-disk [`store`], so the construction cost is paid once per
    /// network rather than once per harness binary (89 s vs a 2.5–6 s
    /// reload at paper scale).
    pub fn oracle(&self, scale: Scale) -> CachedOracle<'_> {
        self.oracle_with_report(scale).0
    }

    /// [`Experiment::oracle`] plus the label store's provenance report
    /// (`None` at the label-less smoke scale). Harnesses that gate on the
    /// reload path (e.g. `paper_replay --require-reloaded`) use the
    /// report.
    pub fn oracle_with_report(
        &self,
        scale: Scale,
    ) -> (CachedOracle<'_>, Option<store::StoreReport>) {
        let (dcache, pcache) = (scale.distance_cache_entries(), scale.path_cache_entries());
        match scale {
            Scale::Smoke => (
                CachedOracle::with_options(
                    &self.workload.network,
                    OracleBackend::Dijkstra,
                    dcache,
                    pcache,
                ),
                None,
            ),
            Scale::Quick | Scale::Paper => {
                let (labels, report) = store::load_or_build(&self.workload.network);
                (
                    CachedOracle::with_labels(&self.workload.network, labels, dcache, pcache),
                    Some(report),
                )
            }
        }
    }

    /// Thread-safe counterpart of [`Experiment::oracle_with_report`] for
    /// parallel replays: the same store-backed labels behind the sharded
    /// caches, with per-scale shard counts and the same total capacities.
    pub fn sharded_oracle_with_report(
        &self,
        scale: Scale,
    ) -> (ShardedOracle<'_>, Option<store::StoreReport>) {
        let (dcache, pcache) = (scale.distance_cache_entries(), scale.path_cache_entries());
        let shards = scale.oracle_shards();
        match scale {
            Scale::Smoke => (
                ShardedOracle::with_options(
                    &self.workload.network,
                    OracleBackend::Dijkstra,
                    shards,
                    dcache,
                    pcache,
                ),
                None,
            ),
            Scale::Quick | Scale::Paper => {
                let (labels, report) = store::load_or_build(&self.workload.network);
                (
                    ShardedOracle::with_labels(
                        &self.workload.network,
                        labels,
                        shards,
                        dcache,
                        pcache,
                    ),
                    Some(report),
                )
            }
        }
    }

    /// Runs one simulation point.
    pub fn run_point(
        &self,
        oracle: &CachedOracle<'_>,
        planner: PlannerKind,
        constraints: Constraints,
        vehicles: usize,
        capacity: usize,
        max_requests: usize,
    ) -> SimReport {
        // Every measurement point starts from a cold distance cache so that
        // the order in which algorithms are benchmarked cannot bias the
        // latency comparison.
        oracle.clear_caches();
        oracle.reset_stats();
        let config = SimConfig {
            vehicles,
            capacity,
            constraints,
            planner,
            max_requests: Some(max_requests),
            seed: self.seed,
            cruise_when_idle: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&self.workload.network, oracle, config);
        sim.run(&self.workload.trips)
    }
}

/// Deterministic fleet-dispatch fixture shared by the `dispatch_parallel`
/// criterion bench and the `bench_summary` CI gate.
///
/// Everything is derived from the seed through splittable hashing — no
/// `HashMap` iteration, no wall clock — so two processes building the same
/// configuration produce byte-identical fleets and request batches, which
/// is what lets CI compare sequential and parallel dispatch for divergence.
pub mod dispatch_fixture {
    use kinetic_core::{Constraints, KineticConfig, PlannerKind, TripRequest, Vehicle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use roadnet::{GeneratorConfig, NetworkKind, NodeId, RoadNetwork};
    use spatial::{GridIndex, Position};

    /// A frozen dispatch scenario: network, fleet, spatial index, and the
    /// request batch to dispatch against them.
    pub struct DispatchFixture {
        /// The synthetic road network.
        pub network: RoadNetwork,
        /// The idle fleet, vehicle `i` has id `i`.
        pub vehicles: Vec<Vehicle>,
        /// Grid index over the fleet's starting positions.
        pub index: GridIndex,
        /// The deterministic request batch (one dispatch tick).
        pub requests: Vec<TripRequest>,
    }

    /// Builds a `rows × cols` grid city with `fleet` idle kinetic-tree
    /// vehicles on seed-chosen vertices and `requests` seed-chosen trips
    /// submitted at time zero (one tick's worth of concurrent demand).
    pub fn build(
        rows: usize,
        cols: usize,
        fleet: usize,
        requests: usize,
        seed: u64,
    ) -> DispatchFixture {
        let network = GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        let n = network.node_count() as u64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15F_A7C4_0000_0001);
        let mut vehicles = Vec::with_capacity(fleet);
        let mut index = GridIndex::new(2_000.0);
        for id in 0..fleet as u32 {
            let start = (rng.gen::<u64>() % n) as NodeId;
            let v = Vehicle::new(
                id,
                start,
                4,
                PlannerKind::Kinetic(KineticConfig::slack()),
                0.0,
            );
            let p = network.point(start);
            index.insert(id, Position::new(p.x, p.y));
            vehicles.push(v);
        }
        let constraints = Constraints::paper_default();
        let mut reqs = Vec::with_capacity(requests);
        for rid in 0..requests as u64 {
            let source = (rng.gen::<u64>() % n) as NodeId;
            let mut destination = (rng.gen::<u64>() % n) as NodeId;
            if destination == source {
                destination = (destination + 1) % n as NodeId;
            }
            reqs.push(TripRequest::new(
                rid + 1,
                source,
                destination,
                0.0,
                constraints,
            ));
        }
        DispatchFixture {
            network,
            vehicles,
            index,
            requests: reqs,
        }
    }

    /// Warms both oracles by replaying the fixture's request batch once
    /// through each dispatcher, so subsequent timed runs compare dispatch
    /// cost rather than cache fill. Shared by the `dispatch_parallel`
    /// criterion bench and the `bench_summary` CI gate so the two
    /// measurement protocols cannot drift.
    pub fn warm(
        fx: &DispatchFixture,
        seq_oracle: &roadnet::CachedOracle<'_>,
        par_oracle: &roadnet::ShardedOracle<'_>,
    ) {
        use kinetic_core::{Dispatcher, DispatcherConfig, ParallelDispatcher};
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = Dispatcher::new(DispatcherConfig::default());
        for r in &fx.requests {
            let _ = d.assign(r, &mut vehicles, &fx.network, &mut index, seq_oracle);
        }
        let mut vehicles = fx.vehicles.clone();
        let mut index = fx.index.clone();
        let mut d = ParallelDispatcher::new(DispatcherConfig::default(), 1);
        let _ = d.assign_batch(
            &fx.requests,
            &mut vehicles,
            &fx.network,
            &mut index,
            par_oracle,
        );
    }
}

/// Deterministic MIP-matcher fixture shared by the `mip_solve` criterion
/// bench and the `bench_summary` MIP section/CI gate.
///
/// Generates the same scheduling problems (per seed) every run, so the
/// sparse production solver and the frozen dense baseline
/// ([`baseline::dense_mip`]) are always timed on identical instances.
pub mod mip_fixture {
    use kinetic_core::problem::{SchedulingProblem, WaitingTrip};
    use roadnet::{DistanceOracle, GeneratorConfig, MatrixOracle, NetworkKind};

    /// The grid network + all-pairs oracle the fixture problems live on.
    pub fn oracle(seed: u64) -> MatrixOracle {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 5, cols: 5 },
            seed,
            ..GeneratorConfig::default()
        }
        .generate();
        MatrixOracle::new(&g)
    }

    /// Builds `count` deterministic scheduling problems with `trips`
    /// waiting trips each (trips-on-board in the paper's Fig. 6 sense: the
    /// new request counts as one of them).
    pub fn problems(
        oracle: &MatrixOracle,
        trips: usize,
        count: usize,
        seed: u64,
    ) -> Vec<SchedulingProblem> {
        let n = oracle.node_count() as u64;
        (0..count)
            .map(|inst| {
                let mut state = seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(7 + inst as u64 * 0x9E37_79B9);
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut p = SchedulingProblem::new((next() % n) as u32, 0.0, 4);
                for t in 0..trips as u64 {
                    let pickup = (next() % n) as u32;
                    let mut dropoff = (next() % n) as u32;
                    if dropoff == pickup {
                        dropoff = (dropoff + 1) % n as u32;
                    }
                    let direct = oracle.dist(pickup, dropoff);
                    // Deadlines are staggered by trip index like a real
                    // arrival stream; without this, 4-trip instances are
                    // almost always infeasible and the benchmark would
                    // time infeasibility proofs instead of solves.
                    p.waiting.push(WaitingTrip {
                        trip: t,
                        pickup,
                        dropoff,
                        pickup_deadline: 2_500.0 + t as f64 * 1_500.0 + (next() % 2_000) as f64,
                        max_ride: direct * 1.4 + 100.0,
                    });
                }
                p
            })
            .collect()
    }
}

/// Minimal command-line options shared by every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Which panel of the figure to reproduce (`a`, `b`, `c`, or `all`).
    pub panel: String,
    /// Run scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parses `--panel`, `--scale` and `--seed` from `std::env::args`.
    pub fn parse() -> Self {
        let mut panel = "all".to_string();
        let mut scale = Scale::Quick;
        let mut seed = 42u64;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--panel" if i + 1 < args.len() => {
                    panel = args[i + 1].clone();
                    i += 1;
                }
                "--scale" if i + 1 < args.len() => {
                    scale = Scale::parse(&args[i + 1]).unwrap_or(Scale::Quick);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    seed = args[i + 1].parse().unwrap_or(42);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        HarnessArgs { panel, scale, seed }
    }

    /// True when the given panel should run.
    pub fn wants(&self, panel: &str) -> bool {
        self.panel == "all" || self.panel == panel
    }
}

/// Prints an aligned plain-text table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() && cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Extracts ART (ms) for a given number of active requests from a report,
/// falling back to the largest measured bucket at or below it.
pub fn art_at(report: &SimReport, active: usize) -> Option<f64> {
    report.art_ms(active).or_else(|| {
        report
            .art_table
            .iter()
            .rfind(|&&(a, _, _)| a <= active)
            .map(|&(_, _, ms)| ms)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_presets() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Paper.trips(), 432_327);
        assert_eq!(
            Scale::Paper.fleet_sweep(),
            vec![1_000, 2_000, 5_000, 10_000, 20_000]
        );
        assert!(Scale::Smoke.trips() < Scale::Quick.trips());
    }

    #[test]
    fn sweeps_match_the_paper_tables() {
        let c = constraint_sweep();
        assert_eq!(c.len(), 5);
        assert_eq!(c[0].0, "5min/10%");
        assert_eq!(c[4].1.detour_factor, 0.5);
        assert_eq!(four_algorithms().len(), 4);
        assert_eq!(tree_variants().len(), 3);
    }

    #[test]
    fn cache_sizes_follow_the_sizing_sweep() {
        // The PR 3 sweep: hit rate saturates by 10k entries on the 40×40
        // dispatch stream. Smoke pins the saturation point; the larger
        // scales grow with their networks instead of sharing one
        // hard-coded 2M/20k pair (the bug this test guards against).
        assert_eq!(Scale::Smoke.distance_cache_entries(), 10_000);
        assert_eq!(Scale::Quick.distance_cache_entries(), 50_000);
        assert_eq!(Scale::Paper.distance_cache_entries(), 4_000_000);
        assert_eq!(Scale::Smoke.path_cache_entries(), 2_000);
        assert_eq!(Scale::Quick.path_cache_entries(), 10_000);
        assert_eq!(Scale::Paper.path_cache_entries(), 50_000);
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert!(
                scale.path_cache_entries() <= scale.distance_cache_entries() / 5,
                "path cache should stay well below the distance cache"
            );
            // Per-shard capacity must stay above the saturation point so
            // sharding never costs hit rate.
            assert!(
                scale.distance_cache_entries() / scale.oracle_shards() >= 2_500,
                "{scale:?}: shards would starve"
            );
        }
    }

    #[test]
    fn window_and_budget_constants_are_consistent_with_span() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            // Every scale reports the same number of buckets, and the
            // windows tile the demand span exactly.
            assert_eq!(
                scale.window_seconds() * Scale::WINDOWS_PER_RUN as f64,
                scale.span_seconds(),
                "{scale:?}"
            );
            // A sweep point's wall-clock budget never exceeds the span it
            // simulates, and the capacity-sweep request cap never exceeds
            // the scale's own per-point cap.
            assert!(scale.point_budget_seconds() <= scale.span_seconds());
            assert!(scale.capacity_sweep_requests() <= scale.requests_per_point());
        }
        // Paper windows are exactly the hours of the simulated day.
        assert_eq!(Scale::Paper.window_seconds(), 3_600.0);
        assert_eq!(Scale::Paper.point_budget_seconds(), 3_600.0);
    }

    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let exp = Experiment::new(Scale::Smoke, 1);
        let oracle = exp.oracle(Scale::Smoke);
        let report = exp.run_point(
            &oracle,
            PlannerKind::Kinetic(KineticConfig::slack()),
            Constraints::paper_default(),
            10,
            4,
            30,
        );
        assert_eq!(report.requests, 30);
        assert_eq!(report.guarantee_violations, 0);
    }

    #[test]
    fn art_at_falls_back_to_lower_bucket() {
        let report = SimReport {
            art_table: vec![(0, 10, 0.1), (2, 5, 0.5)],
            ..SimReport::default()
        };
        assert_eq!(art_at(&report, 2), Some(0.5));
        assert_eq!(art_at(&report, 4), Some(0.5));
        assert_eq!(art_at(&report, 0), Some(0.1));
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a".to_string(), "b".to_string()],
            &[vec!["1".to_string(), "2.5".to_string()]],
        );
        assert_eq!(fmt_ms(1.23456), "1.235");
    }
}

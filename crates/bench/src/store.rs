//! Shared on-disk hub-label store: build once, reload forever.
//!
//! Every experiment binary used to rebuild the hub labels for its network
//! from scratch — 89 s at paper scale, paid again by every harness process.
//! The PR 3 persistence work made labels loadable in 2.5–6 s; this module
//! is the missing wiring: a directory of label files keyed by the network's
//! [`RoadNetwork::fingerprint`], consulted before any build. The first
//! process to need labels for a network builds, saves and verifies them;
//! every later process (or re-run) reloads in seconds. Because the file
//! name *and* the persist header both carry the fingerprint, a stale or
//! foreign file can never be applied to the wrong network — it simply
//! misses the lookup, and a corrupted hit is rejected by
//! [`HubLabels::load`]'s checksum and rebuilt.
//!
//! The store lives in `target/label-cache` by default (next to the other
//! build artefacts, wiped by `cargo clean`) and can be pointed elsewhere
//! with the `RIDESHARE_LABEL_CACHE` environment variable.

use std::path::PathBuf;
use std::time::Instant;

use kinetic_core::FaultPlan;
use roadnet::{HubLabels, RoadNetwork};

/// Environment variable overriding the store directory.
pub const CACHE_DIR_ENV: &str = "RIDESHARE_LABEL_CACHE";

/// How [`load_or_build`] obtained its labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// Built from scratch (then saved and reload-verified).
    Built,
    /// Reloaded from a previously persisted file.
    Reloaded,
}

/// Provenance and timings of one [`load_or_build`] call, reported by the
/// harness artifacts and gated in CI (the reload path must actually be
/// exercised, and a fresh build must round-trip through disk).
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Fingerprint of the network the labels belong to.
    pub fingerprint: u64,
    /// File the labels were loaded from / saved to.
    pub path: PathBuf,
    /// Whether the labels were built or reloaded.
    pub source: LabelSource,
    /// Build time in milliseconds (0 when reloaded).
    pub build_ms: f64,
    /// Load time in milliseconds: the reload for [`LabelSource::Reloaded`],
    /// the post-save verification reload for [`LabelSource::Built`].
    pub load_ms: f64,
    /// Size of the persisted file in bytes.
    pub bytes: u64,
    /// True when a freshly built labeling was saved, reloaded and compared
    /// equal — the build-then-reload round trip CI gates on. Always true
    /// for [`LabelSource::Reloaded`] (verified at build time).
    pub roundtrip_verified: bool,
    /// Why a store file that *existed* was not used (corrupt, truncated,
    /// injected IO fault, ...). `None` on a clean reload or a cold miss.
    /// Harness artifacts surface this so a silently-degraded cache shows
    /// up in CI instead of only on stderr.
    pub fallback_reason: Option<String>,
}

/// The store directory: `$RIDESHARE_LABEL_CACHE` or `target/label-cache`.
pub fn cache_dir() -> PathBuf {
    std::env::var_os(CACHE_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("label-cache"))
}

/// The store path for a network's labels.
pub fn label_path(graph: &RoadNetwork) -> PathBuf {
    cache_dir().join(format!("hl-{:016x}.hlbl", graph.fingerprint()))
}

/// Returns hub labels for `graph`, reloading them from the store when a
/// valid file exists and building + persisting them otherwise.
///
/// A fresh build is immediately reloaded from disk and compared against
/// the in-memory labels, so every entry the store ever serves has passed
/// the round trip. Store I/O failures (unwritable directory, corrupt
/// file) degrade to a plain rebuild — the harness still runs, just
/// without the cache.
pub fn load_or_build(graph: &RoadNetwork) -> (HubLabels, StoreReport) {
    load_or_build_with_fault(graph, &FaultPlan::none())
}

/// [`load_or_build`] with an injectable fault plan: when
/// [`FaultPlan::store_io_errors`] is set, every load of an existing store
/// file fails as if the read had errored, forcing the rebuild path. The
/// chaos harness uses this to prove the serve stack comes up (degraded to
/// a fresh build) when the label cache is unreadable.
pub fn load_or_build_with_fault(
    graph: &RoadNetwork,
    fault: &FaultPlan,
) -> (HubLabels, StoreReport) {
    let path = label_path(graph);
    let fingerprint = graph.fingerprint();
    let mut fallback_reason = None;
    if path.is_file() {
        let timer = Instant::now();
        let loaded = if fault.store_io_errors {
            Err(roadnet::RoadNetError::Persist(
                "injected store IO fault".to_string(),
            ))
        } else {
            HubLabels::load(&path, graph)
        };
        match loaded {
            Ok(labels) => {
                let load_ms = timer.elapsed().as_secs_f64() * 1e3;
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                eprintln!(
                    "label store: reloaded {} ({bytes} bytes) in {load_ms:.0} ms",
                    path.display()
                );
                return (
                    labels,
                    StoreReport {
                        fingerprint,
                        path,
                        source: LabelSource::Reloaded,
                        build_ms: 0.0,
                        load_ms,
                        bytes,
                        roundtrip_verified: true,
                        fallback_reason: None,
                    },
                );
            }
            Err(e) => {
                eprintln!("label store: {} unusable ({e}); rebuilding", path.display());
                fallback_reason = Some(e.to_string());
            }
        }
    }
    let timer = Instant::now();
    let labels = HubLabels::build(graph);
    let build_ms = timer.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "label store: built labels for {} nodes in {:.0} ms",
        graph.node_count(),
        build_ms
    );
    let mut load_ms = 0.0;
    let mut bytes = 0u64;
    let mut roundtrip_verified = false;
    // Write via a process-unique temp file + rename so a process killed
    // mid-save (or two harness binaries racing on the same network) can
    // never leave a torn file at the looked-up path — same pattern as the
    // simulation checkpoint writer.
    let tmp = path.with_extension(format!("hlbl.tmp.{}", std::process::id()));
    let saved = std::fs::create_dir_all(cache_dir())
        .map_err(roadnet::RoadNetError::from)
        .and_then(|()| labels.save(graph, &tmp))
        .and_then(|()| std::fs::rename(&tmp, &path).map_err(roadnet::RoadNetError::from));
    if saved.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    match saved {
        Ok(()) => {
            bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let timer = Instant::now();
            match HubLabels::load(&path, graph) {
                Ok(back) if back == labels => {
                    load_ms = timer.elapsed().as_secs_f64() * 1e3;
                    roundtrip_verified = true;
                    eprintln!(
                        "label store: saved {} ({bytes} bytes), reload verified in {load_ms:.0} ms",
                        path.display()
                    );
                }
                Ok(_) => {
                    eprintln!("label store: reload verification FAILED (labels differ); removing");
                    std::fs::remove_file(&path).ok();
                }
                Err(e) => {
                    eprintln!("label store: reload verification FAILED ({e}); removing");
                    std::fs::remove_file(&path).ok();
                }
            }
        }
        Err(e) => {
            eprintln!("label store: could not persist to {} ({e})", path.display());
        }
    }
    (
        labels,
        StoreReport {
            fingerprint,
            path,
            source: LabelSource::Built,
            build_ms,
            load_ms,
            bytes,
            roundtrip_verified,
            fallback_reason,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{GeneratorConfig, NetworkKind};
    use std::sync::Mutex;

    /// The store directory is configured through a process-wide environment
    /// variable; serialise the tests that touch it.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn grid(rows: usize, cols: usize, seed: u64) -> roadnet::RoadNetwork {
        GeneratorConfig {
            kind: NetworkKind::Grid { rows, cols },
            seed,
            ..GeneratorConfig::default()
        }
        .generate()
    }

    #[test]
    fn build_then_reload_round_trip() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("label_store_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var(CACHE_DIR_ENV, &dir);

        let g = grid(6, 6, 3);
        let (labels, report) = load_or_build(&g);
        assert_eq!(report.source, LabelSource::Built);
        assert!(report.roundtrip_verified, "fresh build must verify");
        assert!(report.bytes > 0);
        assert!(report.path.is_file());

        // Second call must hit the store, not rebuild.
        let (again, report2) = load_or_build(&g);
        assert_eq!(report2.source, LabelSource::Reloaded);
        assert_eq!(again, labels);

        // A different network misses the store (different fingerprint) and
        // builds its own entry.
        let other = grid(5, 7, 4);
        let (_, report3) = load_or_build(&other);
        assert_eq!(report3.source, LabelSource::Built);
        assert_ne!(report3.path, report.path);

        // A corrupted entry is detected and rebuilt, with the reason
        // surfaced on the report instead of only stderr.
        let mut bytes = std::fs::read(&report.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&report.path, bytes).unwrap();
        let (rebuilt, report4) = load_or_build(&g);
        assert_eq!(report4.source, LabelSource::Built);
        assert_eq!(rebuilt, labels);
        assert!(
            report4.fallback_reason.is_some(),
            "corrupt-file fallback must carry a reason"
        );
        // The clean paths carry none.
        assert_eq!(report2.fallback_reason, None);
        assert_eq!(report3.fallback_reason, None);

        std::env::remove_var(CACHE_DIR_ENV);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_store_file_never_panics_at_any_prefix() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("label_store_trunc_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var(CACHE_DIR_ENV, &dir);

        let g = grid(5, 5, 9);
        let (labels, report) = load_or_build(&g);
        assert!(report.roundtrip_verified);
        let full = std::fs::read(&report.path).unwrap();
        assert!(full.len() > 64, "need a non-trivial file to truncate");

        // Every strict prefix of the file must be rejected by the loader —
        // an error, never a panic, never a silently wrong labeling. This
        // mirrors the persist suite's torn-write coverage, at the store
        // layer.
        for cut in 0..full.len() {
            std::fs::write(&report.path, &full[..cut]).unwrap();
            assert!(
                HubLabels::load(&report.path, &g).is_err(),
                "prefix of {cut}/{} bytes must not load",
                full.len()
            );
        }

        // And through the store API the fallback rebuilds with the reason
        // surfaced (sample a few cuts — each rebuild is a full build).
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            std::fs::write(&report.path, &full[..cut]).unwrap();
            let (rebuilt, rep) = load_or_build(&g);
            assert_eq!(rep.source, LabelSource::Built);
            assert_eq!(rebuilt, labels);
            assert!(rep.fallback_reason.is_some(), "cut {cut} must surface why");
        }

        // The injected store IO fault forces the rebuild path even with a
        // pristine file on disk.
        let (faulted, rep) = load_or_build_with_fault(
            &g,
            &kinetic_core::FaultPlan {
                store_io_errors: true,
                ..kinetic_core::FaultPlan::none()
            },
        );
        assert_eq!(rep.source, LabelSource::Built);
        assert_eq!(faulted, labels);
        assert!(
            rep.fallback_reason
                .as_deref()
                .is_some_and(|r| r.contains("injected")),
            "injected fault must be the surfaced reason: {:?}",
            rep.fallback_reason
        );

        std::env::remove_var(CACHE_DIR_ENV);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Frozen copy of the seed's hub-label construction pipeline.
//!
//! The contraction-ordered, batched, CSR-arena build in `roadnet`
//! replaced the seed's pruned-landmark implementation (per-vertex `Vec`
//! labels, merge-intersection pruning, degree or sampled-betweenness
//! ordering). The `bench_summary` hub-label section reports speedup and
//! label-size ratios *against that seed pipeline*, so this module keeps a
//! faithful copy as the measurement baseline — it is deliberately not
//! optimised and must not borrow improvements from `roadnet::hub_label`.
//!
//! Only what the comparison needs is reproduced: build, total label
//! entries, and a distance query for spot-checking exactness.
//!
//! The same policy covers the optimisation substrate: [`dense_mip`] keeps
//! the seed's dense two-phase simplex + branch-and-bound solver as the
//! frozen baseline the sparse revised-simplex rewrite is measured against.

pub mod dense_mip;

use std::collections::BinaryHeap;

use roadnet::types::{HeapEntry, NodeId, Weight, INFINITY};
use roadnet::{DijkstraEngine, RoadNetwork};

/// The seed's ordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOrdering {
    /// Descending degree — the seed's `HubLabels::build` default, the
    /// configuration whose superlinear build times ROADMAP records.
    Degree,
    /// Descending sampled betweenness over `samples` shortest-path trees.
    SampledBetweenness {
        /// Number of sampled sources.
        samples: usize,
    },
}

/// Labels produced by the seed pipeline.
pub struct SeedLabels {
    labels: Vec<Vec<(u32, Weight)>>,
}

impl SeedLabels {
    /// Runs the seed's pruned-landmark construction.
    pub fn build(graph: &RoadNetwork, ordering: SeedOrdering) -> Self {
        let order = seed_order(graph, ordering);
        let n = graph.node_count();
        let mut labels: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); n];
        let mut dist = vec![INFINITY; n];
        let mut touched: Vec<NodeId> = Vec::new();
        for (rank, &root) in order.iter().enumerate() {
            let rank = rank as u32;
            let mut heap = BinaryHeap::new();
            dist[root as usize] = 0.0;
            touched.push(root);
            heap.push(HeapEntry::new(0.0, root));
            while let Some(HeapEntry { cost, node }) = heap.pop() {
                let d = cost.0;
                if d > dist[node as usize] {
                    continue;
                }
                if query(&labels[root as usize], &labels[node as usize]) <= d + 1e-9 {
                    continue;
                }
                labels[node as usize].push((rank, d));
                for (v, w) in graph.neighbors(node) {
                    let nd = d + w;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        touched.push(v);
                        heap.push(HeapEntry::new(nd, v));
                    }
                }
            }
            for &t in &touched {
                dist[t as usize] = INFINITY;
            }
            touched.clear();
        }
        SeedLabels { labels }
    }

    /// Total label entries over all vertices.
    pub fn total_label_entries(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Mean label size per vertex.
    pub fn mean_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.total_label_entries() as f64 / self.labels.len() as f64
        }
    }

    /// Exact distance query (None when disconnected).
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Weight> {
        if s == t {
            return Some(0.0);
        }
        let d = query(&self.labels[s as usize], &self.labels[t as usize]);
        if d == INFINITY {
            None
        } else {
            Some(d)
        }
    }
}

fn query(a: &[(u32, Weight)], b: &[(u32, Weight)]) -> Weight {
    let mut i = 0;
    let mut j = 0;
    let mut best = INFINITY;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].1 + b[j].1;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

fn seed_order(graph: &RoadNetwork, ordering: SeedOrdering) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut score = vec![0.0f64; n];
    match ordering {
        SeedOrdering::Degree => {
            for (v, s) in score.iter_mut().enumerate() {
                *s = graph.degree(v as NodeId) as f64;
            }
        }
        SeedOrdering::SampledBetweenness { samples } => {
            let engine = DijkstraEngine::new(graph);
            let samples = samples.clamp(1, n);
            let stride = (n / samples).max(1);
            for s in (0..n).step_by(stride) {
                let tree = engine.search(s as NodeId);
                for v in 0..n {
                    let mut cur = v;
                    let mut hops = 0usize;
                    while tree.parent[cur] != u32::MAX && hops < n {
                        cur = tree.parent[cur] as usize;
                        score[cur] += 1.0;
                        hops += 1;
                    }
                }
            }
            for (v, s) in score.iter_mut().enumerate() {
                *s += graph.degree(v as NodeId) as f64 * 1e-3;
            }
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by(|&a, &b| {
        score[b as usize]
            .partial_cmp(&score[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{GeneratorConfig, NetworkKind, ShortestPathEngine};

    #[test]
    fn seed_pipeline_is_exact() {
        let g = GeneratorConfig {
            kind: NetworkKind::Grid { rows: 6, cols: 6 },
            seed: 5,
            ..GeneratorConfig::default()
        }
        .generate();
        let labels = SeedLabels::build(&g, SeedOrdering::SampledBetweenness { samples: 8 });
        let dij = DijkstraEngine::new(&g);
        let n = g.node_count() as NodeId;
        for (s, t) in (0..30).map(|i| ((i * 5) % n, (i * 13 + 2) % n)) {
            let expect = dij.distance(s, t);
            let got = labels.distance(s, t);
            match (expect, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6),
                (None, None) => {}
                _ => panic!("reachability mismatch {s}->{t}"),
            }
        }
        assert!(labels.mean_label_size() >= 1.0);
    }
}

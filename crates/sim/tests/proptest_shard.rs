//! Property: the sharded engine is bit-identical to the single-shard
//! engine at every shard count, for arbitrary workloads and planners.
//!
//! This is the determinism gate of the partitioned architecture: whatever
//! the random city, demand pattern, planner kind, batching mode and shard
//! count, running the fleet split across region shards — with dispatch,
//! migrations and cross-region commits flowing through the `ShardBroker` —
//! must produce the same report (every deterministic field bit-for-bit),
//! the same per-request traces, and the same final fleet geometry as the
//! unpartitioned engine. A second property holds the conservation
//! invariants (every vehicle owned exactly once, owners consistent with
//! the partition, broker quiescent) at every tick barrier.

use kinetic_core::{KineticConfig, PlannerKind, SolverKind};
use proptest::prelude::*;
use rideshare_sim::{RequestTrace, ShardedSimulation, SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, Workload};
use roadnet::{CachedOracle, PartitionSpec};

fn planner_strategy() -> impl Strategy<Value = PlannerKind> {
    prop_oneof![
        Just(PlannerKind::Kinetic(KineticConfig::basic())),
        Just(PlannerKind::Kinetic(KineticConfig::slack())),
        Just(PlannerKind::Kinetic(KineticConfig::hotspot(300.0))),
        Just(PlannerKind::Solver(SolverKind::BranchBound)),
    ]
}

/// Deterministic observables of a finished run; float fields compared
/// through their bit patterns.
fn report_numbers(r: &rideshare_sim::SimReport) -> Vec<u64> {
    vec![
        r.requests,
        r.assigned,
        r.rejected,
        r.completed,
        r.guarantee_violations,
        r.mean_wait_seconds.to_bits(),
        r.mean_detour_ratio.to_bits(),
        r.fleet_distance_km.to_bits(),
        r.distance_per_delivery_km.to_bits(),
        r.mean_candidates.to_bits(),
        r.span_seconds.to_bits(),
        r.occupancy.fleet_max as u64,
        r.occupancy.mean_of_max.to_bits(),
        r.occupancy.top20_mean_of_max.to_bits(),
        r.occupancy.mean_at_pickup.to_bits(),
        r.art_table.iter().map(|&(k, c, _)| k as u64 + c).sum(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_is_bit_identical_to_single_shard(
        seed in 0u64..1_000,
        trips in 15usize..50,
        vehicles in 5usize..16,
        cruise_bit in 0usize..2,
        batch_bit in 0usize..2,
        planner in planner_strategy(),
    ) {
        let w = Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 2.0 * 3_600.0,
                ..DemandConfig::default()
            },
            seed,
        );
        let config = SimConfig {
            vehicles,
            planner,
            cruise_when_idle: cruise_bit == 1,
            batch_window_seconds: if batch_bit == 1 { 120.0 } else { 0.0 },
            seed: seed ^ 0xC0FF_EE00,
            ..SimConfig::default()
        };
        let oracle = CachedOracle::without_labels(&w.network);

        let mut single = Simulation::new(&w.network, &oracle, config);
        let expect_report = report_numbers(&single.run(&w.trips));
        let expect_trace: Vec<RequestTrace> = single.trace().iter().copied().collect();
        let expect_fleet: Vec<u32> = single.vehicles().iter().map(|v| v.location()).collect();

        for k in [1usize, 2, 4, 8] {
            let partition = PartitionSpec::grow(&w.network, k);
            let mut sharded = ShardedSimulation::new(&w.network, &oracle, partition, config);
            let got_report = report_numbers(&sharded.run(&w.trips));
            prop_assert_eq!(&got_report, &expect_report, "report diverged at k = {}", k);
            let got_trace: Vec<RequestTrace> = sharded.trace().iter().copied().collect();
            prop_assert_eq!(&got_trace, &expect_trace, "traces diverged at k = {}", k);
            let got_fleet: Vec<u32> =
                sharded.vehicles().iter().map(|v| v.location()).collect();
            prop_assert_eq!(&got_fleet, &expect_fleet, "fleet diverged at k = {}", k);
        }
    }

    /// Conservation: with per-barrier invariant checking on (every vehicle
    /// owned exactly once, owner table consistent with the partition,
    /// vehicles sorted within shards, broker quiescent, one record per
    /// traced request), arbitrary runs complete without tripping it —
    /// and every submitted request is accounted for exactly once.
    #[test]
    fn every_vehicle_and_request_is_owned_exactly_once_at_every_barrier(
        seed in 0u64..1_000,
        trips in 10usize..40,
        vehicles in 4usize..14,
        shards in 2usize..9,
        cruise_bit in 0usize..2,
    ) {
        let w = Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 90.0 * 60.0,
                ..DemandConfig::default()
            },
            seed,
        );
        let config = SimConfig {
            vehicles,
            cruise_when_idle: cruise_bit == 1,
            seed: seed.wrapping_mul(31) ^ 0xBEEF,
            ..SimConfig::default()
        };
        let oracle = CachedOracle::without_labels(&w.network);
        let partition = PartitionSpec::grow(&w.network, shards);
        let mut sim = ShardedSimulation::new(&w.network, &oracle, partition, config);
        sim.set_verify_invariants(true);
        let report = sim.run(&w.trips);
        // Closing the books: requests partition into assigned + rejected,
        // dispatch modes partition into local + boundary, and the final
        // barrier left the invariants intact (checked once more here).
        prop_assert_eq!(report.requests, w.trips.len() as u64);
        prop_assert_eq!(report.assigned + report.rejected, report.requests);
        let net = sim.net_stats();
        prop_assert_eq!(net.local_requests + net.boundary_requests, report.requests);
        prop_assert_eq!(report.guarantee_violations, 0);
        sim.check_invariants();
    }
}

//! Property: a run interrupted at an arbitrary point and resumed from its
//! checkpoint is indistinguishable from a run that never stopped.
//!
//! For random workloads, fleets, planners and snapshot positions, the
//! resumed simulation must finish with the same report (every
//! deterministic field bit-for-bit — wall-clock latency means are
//! excluded, as nanosecond timings are not a function of simulation
//! state), the same per-request traces, and the same final fleet
//! geometry as the straight-through run.

use kinetic_core::{KineticConfig, PlannerKind, SolverKind};
use proptest::prelude::*;
use rideshare_sim::checkpoint::digest_trips;
use rideshare_sim::{RequestTrace, SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
use roadnet::CachedOracle;

fn planner_strategy() -> impl Strategy<Value = PlannerKind> {
    prop_oneof![
        Just(PlannerKind::Kinetic(KineticConfig::basic())),
        Just(PlannerKind::Kinetic(KineticConfig::slack())),
        Just(PlannerKind::Kinetic(KineticConfig::hotspot(300.0))),
        Just(PlannerKind::Solver(SolverKind::BranchBound)),
    ]
}

/// Runs `trips[from..]` the way [`Simulation::run`] would, then drains.
fn run_tail(sim: &mut Simulation<'_>, trips: &[TripEvent], from: usize) {
    for trip in &trips[from..] {
        let t_m = sim.config().seconds_to_meters(trip.time_seconds);
        sim.advance_all(t_m);
        sim.submit(trip);
    }
    sim.drain();
}

/// Everything deterministic a finished run exposes, with float fields
/// compared through their bit patterns.
fn observables(sim: &Simulation<'_>) -> (Vec<u64>, Vec<RequestTrace>, Vec<u32>) {
    let r = sim.report();
    let numbers = vec![
        r.requests,
        r.assigned,
        r.rejected,
        r.completed,
        r.guarantee_violations,
        r.mean_wait_seconds.to_bits(),
        r.mean_detour_ratio.to_bits(),
        r.fleet_distance_km.to_bits(),
        r.distance_per_delivery_km.to_bits(),
        r.mean_candidates.to_bits(),
        r.span_seconds.to_bits(),
        r.occupancy.fleet_max as u64,
        r.occupancy.mean_of_max.to_bits(),
        r.occupancy.top20_mean_of_max.to_bits(),
        r.occupancy.mean_at_pickup.to_bits(),
        r.art_table.iter().map(|&(k, c, _)| k as u64 + c).sum(),
    ];
    (
        numbers,
        sim.trace().iter().copied().collect(),
        sim.vehicles().iter().map(|v| v.location()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resume_equals_straight_through(
        seed in 0u64..1_000,
        trips in 20usize..60,
        vehicles in 5usize..16,
        cut_permille in 0usize..1_000,
        cruise_bit in 0usize..2,
        planner in planner_strategy(),
    ) {
        let w = Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 2.0 * 3_600.0,
                ..DemandConfig::default()
            },
            seed,
        );
        let config = SimConfig {
            vehicles,
            planner,
            cruise_when_idle: cruise_bit == 1,
            seed: seed ^ 0xDEAD_BEEF,
            ..SimConfig::default()
        };
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);

        let mut straight = Simulation::new(&w.network, &oracle, config);
        run_tail(&mut straight, &w.trips, 0);
        let expect = observables(&straight);

        // Snapshot after an arbitrary number of submitted requests.
        let cut = (cut_permille * trips) / 1_000;
        let mut interrupted = Simulation::new(&w.network, &oracle, config);
        for trip in &w.trips[..cut] {
            let t_m = interrupted.config().seconds_to_meters(trip.time_seconds);
            interrupted.advance_all(t_m);
            interrupted.submit(trip);
        }
        let bytes = interrupted.checkpoint_bytes(cut, digest);
        drop(interrupted);

        let (mut resumed, next) =
            Simulation::resume(&w.network, &oracle, config, &w.trips, &bytes)
                .expect("checkpoint must restore");
        prop_assert_eq!(next, cut);
        run_tail(&mut resumed, &w.trips, next);
        let got = observables(&resumed);
        prop_assert_eq!(&got.0, &expect.0, "report diverged (cut {})", cut);
        prop_assert_eq!(&got.1, &expect.1, "traces diverged (cut {})", cut);
        prop_assert_eq!(&got.2, &expect.2, "fleet diverged (cut {})", cut);
    }
}

//! Checkpoint/resume coverage for the sharded engine.
//!
//! A sharded checkpoint uses the same engine-neutral RSCK v1 image as the
//! single-shard engine (fleet in ascending id order, merged dispatcher
//! statistics), and shard ownership is derived state — so the tests here
//! prove all four resume directions: sharded → sharded (same partition),
//! sharded → sharded under a *different* partition, single-shard →
//! sharded, and sharded → single-shard. In every case the resumed run
//! must finish bit-identical to the straight-through reference.

use rideshare_sim::checkpoint::digest_trips;
use rideshare_sim::{RequestTrace, ShardedSimulation, SimConfig, Simulation};
use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
use roadnet::{CachedOracle, PartitionSpec};

fn workload(trips: usize, seed: u64) -> Workload {
    Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips,
            span_seconds: 2.0 * 3_600.0,
            ..DemandConfig::default()
        },
        seed,
    )
}

fn config() -> SimConfig {
    SimConfig {
        vehicles: 12,
        seed: 5,
        cruise_when_idle: true,
        ..SimConfig::default()
    }
}

/// Submits `trips[from..]` the way `run` does (advance, submit), then
/// drains — for either engine, via a pair of closures below.
fn run_sharded_tail(sim: &mut ShardedSimulation<'_>, trips: &[TripEvent], from: usize) {
    for trip in &trips[from..] {
        let t_m = sim.config().seconds_to_meters(trip.time_seconds);
        sim.advance_all(t_m);
        sim.submit(trip);
    }
    sim.drain();
}

fn run_single_tail(sim: &mut Simulation<'_>, trips: &[TripEvent], from: usize) {
    for trip in &trips[from..] {
        let t_m = sim.config().seconds_to_meters(trip.time_seconds);
        sim.advance_all(t_m);
        sim.submit(trip);
    }
    sim.drain();
}

fn report_numbers(r: &rideshare_sim::SimReport) -> Vec<u64> {
    vec![
        r.requests,
        r.assigned,
        r.rejected,
        r.completed,
        r.guarantee_violations,
        r.mean_wait_seconds.to_bits(),
        r.mean_detour_ratio.to_bits(),
        r.fleet_distance_km.to_bits(),
        r.distance_per_delivery_km.to_bits(),
        r.mean_candidates.to_bits(),
        r.span_seconds.to_bits(),
    ]
}

type Observed = (Vec<u64>, Vec<RequestTrace>, Vec<u32>);

fn observe_sharded(sim: &ShardedSimulation<'_>) -> Observed {
    (
        report_numbers(&sim.report()),
        sim.trace().iter().copied().collect(),
        sim.vehicles().iter().map(|v| v.location()).collect(),
    )
}

fn observe_single(sim: &Simulation<'_>) -> Observed {
    (
        report_numbers(&sim.report()),
        sim.trace().iter().copied().collect(),
        sim.vehicles().iter().map(|v| v.location()).collect(),
    )
}

#[test]
fn sharded_resume_mid_day_equals_straight_through() {
    let w = workload(60, 9);
    let digest = digest_trips(&w.trips);
    let oracle = CachedOracle::without_labels(&w.network);

    let mut straight = ShardedSimulation::new(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 4),
        config(),
    );
    run_sharded_tail(&mut straight, &w.trips, 0);
    let expect = observe_sharded(&straight);

    for cut in [1usize, 17, 30, 59] {
        let mut first = ShardedSimulation::new(
            &w.network,
            &oracle,
            PartitionSpec::grow(&w.network, 4),
            config(),
        );
        first.set_verify_invariants(true);
        for trip in &w.trips[..cut] {
            let t_m = first.config().seconds_to_meters(trip.time_seconds);
            first.advance_all(t_m);
            first.submit(trip);
        }
        let bytes = first.checkpoint_bytes(cut, digest);
        drop(first);

        let (mut resumed, next) = ShardedSimulation::resume(
            &w.network,
            &oracle,
            PartitionSpec::grow(&w.network, 4),
            config(),
            &w.trips,
            &bytes,
        )
        .expect("sharded checkpoint must restore");
        assert_eq!(next, cut);
        resumed.set_verify_invariants(true);
        resumed.check_invariants();
        run_sharded_tail(&mut resumed, &w.trips, next);
        let got = observe_sharded(&resumed);
        assert_eq!(got, expect, "sharded resume diverged at cut {cut}");
    }
}

/// The partition is not part of the checkpoint binding: a snapshot taken
/// at k = 4 resumes under k = 2 or k = 8 (vehicles re-scattered by their
/// snapshotted positions) and still finishes bit-identical.
#[test]
fn sharded_checkpoint_adapts_to_a_different_partition() {
    let w = workload(50, 21);
    let digest = digest_trips(&w.trips);
    let oracle = CachedOracle::without_labels(&w.network);

    let mut straight = ShardedSimulation::new(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 4),
        config(),
    );
    run_sharded_tail(&mut straight, &w.trips, 0);
    let expect = observe_sharded(&straight);

    let cut = 23;
    let mut first = ShardedSimulation::new(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 4),
        config(),
    );
    for trip in &w.trips[..cut] {
        let t_m = first.config().seconds_to_meters(trip.time_seconds);
        first.advance_all(t_m);
        first.submit(trip);
    }
    let bytes = first.checkpoint_bytes(cut, digest);
    drop(first);

    for k in [1usize, 2, 8] {
        let (mut resumed, next) = ShardedSimulation::resume(
            &w.network,
            &oracle,
            PartitionSpec::grow(&w.network, k),
            config(),
            &w.trips,
            &bytes,
        )
        .expect("checkpoint must adapt to another partition");
        assert_eq!(next, cut);
        resumed.set_verify_invariants(true);
        resumed.check_invariants();
        run_sharded_tail(&mut resumed, &w.trips, next);
        let got = observe_sharded(&resumed);
        assert_eq!(got, expect, "k = {k} resume diverged");
    }
}

/// A single-shard checkpoint restores into the sharded engine (and the
/// sharded run finishes identical to the single-shard reference) — the
/// "correctly adapts" arm of the satellite: ownership is derived, so no
/// refusal is needed.
#[test]
fn single_shard_checkpoint_resumes_into_the_sharded_engine() {
    let w = workload(48, 3);
    let digest = digest_trips(&w.trips);
    let oracle = CachedOracle::without_labels(&w.network);

    let mut straight = Simulation::new(&w.network, &oracle, config());
    run_single_tail(&mut straight, &w.trips, 0);
    let expect = observe_single(&straight);

    let cut = 19;
    let mut first = Simulation::new(&w.network, &oracle, config());
    for trip in &w.trips[..cut] {
        let t_m = first.config().seconds_to_meters(trip.time_seconds);
        first.advance_all(t_m);
        first.submit(trip);
    }
    let bytes = first.checkpoint_bytes(cut, digest);
    drop(first);

    let (mut resumed, next) = ShardedSimulation::resume(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 4),
        config(),
        &w.trips,
        &bytes,
    )
    .expect("single-shard checkpoint must restore into the sharded engine");
    assert_eq!(next, cut);
    resumed.set_verify_invariants(true);
    resumed.check_invariants();
    run_sharded_tail(&mut resumed, &w.trips, next);
    let got = observe_sharded(&resumed);
    assert_eq!(
        got, expect,
        "cross-engine resume (single → sharded) diverged"
    );
}

/// The reverse direction: a sharded checkpoint restores into the plain
/// single-shard engine — the image is engine-neutral in both directions.
#[test]
fn sharded_checkpoint_resumes_into_the_single_shard_engine() {
    let w = workload(48, 7);
    let digest = digest_trips(&w.trips);
    let oracle = CachedOracle::without_labels(&w.network);

    let mut straight = Simulation::new(&w.network, &oracle, config());
    run_single_tail(&mut straight, &w.trips, 0);
    let expect = observe_single(&straight);

    let cut = 25;
    let mut first = ShardedSimulation::new(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 8),
        config(),
    );
    first.set_verify_invariants(true);
    for trip in &w.trips[..cut] {
        let t_m = first.config().seconds_to_meters(trip.time_seconds);
        first.advance_all(t_m);
        first.submit(trip);
    }
    let bytes = first.checkpoint_bytes(cut, digest);
    drop(first);

    let (mut resumed, next) = Simulation::resume(&w.network, &oracle, config(), &w.trips, &bytes)
        .expect("sharded checkpoint must restore into the single-shard engine");
    assert_eq!(next, cut);
    run_single_tail(&mut resumed, &w.trips, next);
    let got = observe_single(&resumed);
    assert_eq!(
        got, expect,
        "cross-engine resume (sharded → single) diverged"
    );
}

/// Binding checks still apply to the sharded resume path: a different
/// trip stream or configuration is refused exactly as on the single-shard
/// path.
#[test]
fn sharded_resume_refuses_mismatched_inputs() {
    let w = workload(20, 2);
    let digest = digest_trips(&w.trips);
    let oracle = CachedOracle::without_labels(&w.network);
    let sim = ShardedSimulation::new(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 2),
        config(),
    );
    let bytes = sim.checkpoint_bytes(0, digest);

    let other = workload(20, 8);
    assert!(ShardedSimulation::resume(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 2),
        config(),
        &other.trips,
        &bytes,
    )
    .is_err());

    let different = SimConfig {
        capacity: 6,
        ..config()
    };
    assert!(ShardedSimulation::resume(
        &w.network,
        &oracle,
        PartitionSpec::grow(&w.network, 2),
        different,
        &w.trips,
        &bytes,
    )
    .is_err());
}

//! Simulation configuration.

use kinetic_core::{Constraints, DispatcherConfig, KineticConfig, PlannerKind};

/// Parameters of one simulation run.
///
/// Defaults follow the paper's default setting for the four-algorithm
/// comparison (Table I): capacity 4, constraints 10 min / 20%, kinetic-tree
/// planner, 14 m/s driving speed. The fleet size defaults to a small value
/// suitable for tests; the experiment harnesses override it per sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of servers (taxis) in the fleet.
    pub vehicles: usize,
    /// Seats per vehicle (`usize::MAX` = the paper's "unlimited capacity").
    pub capacity: usize,
    /// Waiting-time and detour guarantees offered to every rider.
    pub constraints: Constraints,
    /// Matching algorithm every vehicle uses.
    pub planner: PlannerKind,
    /// Constant driving speed in meters per second (the paper uses 14 m/s).
    pub speed_mps: f64,
    /// Cell size of the moving-object grid index, in meters. The waiting
    /// radius is a good default; the paper uses a simple fixed grid.
    pub grid_cell_meters: f64,
    /// Whether idle vehicles cruise by following random road segments (the
    /// paper's behaviour) or park at their last position.
    pub cruise_when_idle: bool,
    /// Process at most this many requests from the workload (None = all).
    pub max_requests: Option<usize>,
    /// Seed for vehicle placement and cruising decisions.
    pub seed: u64,
    /// Dispatcher behaviour (spatial filtering on/off, radius slack).
    pub dispatcher: DispatcherConfig,
    /// Worker threads for candidate evaluation. `1` dispatches inline on
    /// the simulation thread; higher values require the parallel entry
    /// point ([`Simulation::with_parallel`]) because the oracle must be
    /// `Sync` (the sequential constructor panics otherwise rather than
    /// silently ignoring the knob). Assignments are bit-identical for
    /// every value.
    ///
    /// [`Simulation::with_parallel`]: crate::Simulation::with_parallel
    pub workers: usize,
    /// Width of a dispatch tick in seconds. Requests whose submission
    /// times fall into the same window (`floor(t / window)`) are dispatched
    /// through one batched call — grid queries and (with `workers > 1`)
    /// parallel candidate evaluation amortize across the batch. `0.0`
    /// (the default) dispatches every request individually the moment it
    /// arrives. Each request keeps its own submission time, and batching
    /// preserves submission order with the lowest-vehicle-id tie-break, so
    /// for a fixed window width runs are deterministic and bit-identical
    /// across worker counts; different window widths are different
    /// experiments (vehicles advance once per window rather than per
    /// request) and checkpoints record the width in the config digest.
    pub batch_window_seconds: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vehicles: 50,
            capacity: 4,
            constraints: Constraints::paper_default(),
            planner: PlannerKind::Kinetic(KineticConfig::basic()),
            speed_mps: 14.0,
            grid_cell_meters: 2_000.0,
            cruise_when_idle: true,
            max_requests: None,
            seed: 0,
            dispatcher: DispatcherConfig::default(),
            workers: 1,
            batch_window_seconds: 0.0,
        }
    }
}

impl SimConfig {
    /// Converts a wall-clock duration in seconds to the meter-equivalent
    /// units used throughout the scheduling core.
    pub fn seconds_to_meters(&self, seconds: f64) -> f64 {
        seconds * self.speed_mps
    }

    /// Converts meter-equivalents back to seconds.
    pub fn meters_to_seconds(&self, meters: f64) -> f64 {
        meters / self.speed_mps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimConfig::default();
        assert_eq!(c.capacity, 4);
        assert_eq!(c.speed_mps, 14.0);
        assert_eq!(c.constraints, Constraints::paper_default());
        assert!(c.cruise_when_idle);
    }

    #[test]
    fn unit_conversions_are_inverse() {
        let c = SimConfig::default();
        let m = c.seconds_to_meters(600.0);
        assert_eq!(m, 8_400.0);
        assert!((c.meters_to_seconds(m) - 600.0).abs() < 1e-9);
    }
}

//! Checkpoint/resume for long simulation runs.
//!
//! A paper-scale replay submits 432,327 requests over a simulated day and
//! runs for hours of wall clock; an interruption anywhere along the way
//! used to mean starting over. This module snapshots a running
//! [`Simulation`] — fleet (including every kinetic tree), motion state
//! (including each vehicle's cruising-RNG stream), dispatcher statistics,
//! service-quality metrics, per-trip records and the full trace — to a
//! versioned, checksummed binary file, and restores it so that the resumed
//! run is **bit-identical** to one that never stopped (property-tested in
//! `tests/proptest_checkpoint.rs`; the only fields that can differ are the
//! wall-clock latency *means*, since nanosecond timings are not a function
//! of simulation state).
//!
//! The format follows the `roadnet::io::bin` conventions established by
//! the hub-label store: little-endian scalars, length-prefixed
//! collections, a magic/version header and a trailing FNV-1a checksum.
//! Like a persisted label file, a checkpoint is bound to its inputs: the
//! header embeds the road network's fingerprint, a digest of the
//! [`SimConfig`] and a digest of the trip stream, and
//! [`Simulation::resume`] refuses a snapshot taken under any other
//! (network, config, workload) triple. Corrupt or truncated files always
//! surface as [`RoadNetError::Persist`], never a panic — tested at every
//! prefix length, mirroring the hub-label persistence tests.
//!
//! ```text
//! offset  field
//! 0       magic  b"RSCK"
//! 4       format version (u32, currently 1)
//! 8       network fingerprint (u64)
//! 16      SimConfig digest (u64) — excludes worker-count knobs, which are
//!         proven not to affect results, so a sequential checkpoint can
//!         resume on a parallel engine and vice versa
//! 24      trip-stream digest (u64)
//! 32      next trip index (u64), clock (f64), then the state sections:
//!         vehicles, motions, dispatcher stats, metrics, records, trace
//! end-8   FNV-1a checksum over every preceding byte
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use kinetic_core::codec;
use kinetic_core::{DispatchStats, TripId, Vehicle};
use rand::rngs::StdRng;
use rideshare_workload::TripEvent;
use roadnet::io::bin::{self, Reader};
use roadnet::{DistanceOracle, PartitionSpec, RoadNetError, RoadNetwork};
use spatial::{GridIndex, Position};

use crate::config::SimConfig;
use crate::engine::{Motion, Simulation, TripRecord};
use crate::metrics::MetricsCollector;
use crate::shard::ShardedSimulation;
use crate::trace::{RequestTrace, TraceLog};

/// File magic: "RSCK" (ridesharing checkpoint).
const MAGIC: &[u8; 4] = b"RSCK";
/// Current checkpoint format version; bump on any layout change.
const VERSION: u32 = 1;

/// Digest of the parts of a [`SimConfig`] that determine simulation
/// *results*. The worker-count knobs (`workers`,
/// `dispatcher.min_parallel_items`) are excluded: dispatch and movement are
/// bit-identical at any worker count (property-tested since PR 2/3), so a
/// checkpoint may legitimately resume under different parallelism.
pub fn digest_config(config: &SimConfig) -> u64 {
    let mut buf = Vec::with_capacity(96);
    bin::put_u64(&mut buf, config.vehicles as u64);
    bin::put_u64(&mut buf, config.capacity as u64);
    bin::put_f64(&mut buf, config.constraints.max_wait);
    bin::put_f64(&mut buf, config.constraints.detour_factor);
    // Planner identity via its Debug image: covers the solver kind or the
    // full kinetic configuration, and f64 Debug formatting is the shortest
    // round-trip representation, so equal configs hash equally.
    buf.extend_from_slice(format!("{:?}", config.planner).as_bytes());
    bin::put_f64(&mut buf, config.speed_mps);
    bin::put_f64(&mut buf, config.grid_cell_meters);
    codec::put_bool(&mut buf, config.cruise_when_idle);
    match config.max_requests {
        Some(n) => bin::put_u64(&mut buf, n as u64),
        None => bin::put_u64(&mut buf, u64::MAX),
    }
    bin::put_u64(&mut buf, config.seed);
    codec::put_bool(&mut buf, config.dispatcher.use_spatial_filter);
    bin::put_f64(&mut buf, config.dispatcher.radius_factor);
    // Batched ticks change when vehicles move between requests, so the
    // window width is result-determining — but only appended when set, so
    // per-request checkpoints written before the knob existed keep their
    // digest. `dispatcher.use_pruning` is deliberately absent: pruned and
    // exhaustive evaluation produce bit-identical results (property-tested),
    // exactly like the worker knobs.
    if config.batch_window_seconds != 0.0 {
        bin::put_f64(&mut buf, config.batch_window_seconds);
    }
    bin::fnv1a(&buf)
}

/// Digest of a trip stream: a resumed run must replay exactly the requests
/// the interrupted run would have seen.
pub fn digest_trips(trips: &[TripEvent]) -> u64 {
    let mut buf = Vec::with_capacity(24 * trips.len() + 8);
    bin::put_u64(&mut buf, trips.len() as u64);
    for t in trips {
        bin::put_u64(&mut buf, t.id);
        bin::put_u32(&mut buf, t.source);
        bin::put_u32(&mut buf, t.destination);
        bin::put_f64(&mut buf, t.time_seconds);
    }
    bin::fnv1a(&buf)
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    bin::put_u64(out, v as u64);
    bin::put_u64(out, (v >> 64) as u64);
}

fn read_u128(r: &mut Reader<'_>, what: &str) -> Result<u128, RoadNetError> {
    let lo = r.u64(what)? as u128;
    let hi = r.u64(what)? as u128;
    Ok(lo | (hi << 64))
}

fn put_stats(out: &mut Vec<u8>, stats: &DispatchStats) {
    bin::put_u64(out, stats.requests);
    bin::put_u64(out, stats.assigned);
    bin::put_u64(out, stats.rejected);
    bin::put_u64(out, stats.candidates);
    put_u128(out, stats.response_nanos);
    bin::put_u64(out, stats.art_buckets.len() as u64);
    for (&bucket, &(count, nanos)) in &stats.art_buckets {
        bin::put_u64(out, bucket as u64);
        bin::put_u64(out, count);
        put_u128(out, nanos);
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<DispatchStats, RoadNetError> {
    let mut stats = DispatchStats {
        requests: r.u64("stats requests")?,
        assigned: r.u64("stats assigned")?,
        rejected: r.u64("stats rejected")?,
        candidates: r.u64("stats candidates")?,
        response_nanos: read_u128(r, "stats response nanos")?,
        ..DispatchStats::default()
    };
    let buckets = codec::read_len(r, 32, "stats bucket count")?;
    for _ in 0..buckets {
        let bucket = r.u64("stats bucket key")? as usize;
        let count = r.u64("stats bucket count")?;
        let nanos = read_u128(r, "stats bucket nanos")?;
        stats.art_buckets.insert(bucket, (count, nanos));
    }
    Ok(stats)
}

/// Borrowed view of everything a checkpoint captures, assembled by either
/// engine. `vehicles`/`motions` must be aligned and in ascending id order —
/// the single-shard engine stores them that way, the sharded engine
/// assembles them across shards (see `ShardedSimulation::ordered_state`).
pub(crate) struct SnapshotView<'s> {
    pub(crate) graph: &'s RoadNetwork,
    pub(crate) config: &'s SimConfig,
    pub(crate) clock_m: f64,
    pub(crate) vehicles: Vec<&'s Vehicle>,
    pub(crate) motions: Vec<&'s Motion>,
    /// Owned because the sharded engine merges per-shard statistics.
    pub(crate) stats: DispatchStats,
    pub(crate) collector: &'s MetricsCollector,
    pub(crate) records: &'s BTreeMap<TripId, TripRecord>,
    pub(crate) trace: &'s TraceLog,
}

/// Serialises a [`SnapshotView`] into the RSCK v1 byte layout. Shared by
/// both engines, so a checkpoint written by one restores into the other.
pub(crate) fn encode_snapshot(
    view: &SnapshotView<'_>,
    next_trip: usize,
    trips_digest: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 16);
    out.extend_from_slice(MAGIC);
    bin::put_u32(&mut out, VERSION);
    bin::put_u64(&mut out, view.graph.fingerprint());
    bin::put_u64(&mut out, digest_config(view.config));
    bin::put_u64(&mut out, trips_digest);
    bin::put_u64(&mut out, next_trip as u64);
    bin::put_f64(&mut out, view.clock_m);

    bin::put_u64(&mut out, view.vehicles.len() as u64);
    for v in &view.vehicles {
        v.encode(&mut out);
    }
    for m in &view.motions {
        bin::put_u32(&mut out, m.at);
        bin::put_f64(&mut out, m.at_clock_m);
        bin::put_f64(&mut out, m.next_arrival_m);
        for word in m.rng.state() {
            bin::put_u64(&mut out, word);
        }
        bin::put_u64(&mut out, m.path.len() as u64);
        for &(node, leg) in &m.path {
            bin::put_u32(&mut out, node);
            bin::put_f64(&mut out, leg);
        }
    }

    put_stats(&mut out, &view.stats);

    let c = view.collector;
    bin::put_u64(&mut out, c.wait_seconds.len() as u64);
    for &w in &c.wait_seconds {
        bin::put_f64(&mut out, w);
    }
    bin::put_u64(&mut out, c.detour_ratios.len() as u64);
    for &d in &c.detour_ratios {
        bin::put_f64(&mut out, d);
    }
    bin::put_u64(&mut out, c.guarantee_violations);
    bin::put_u64(&mut out, c.completed);
    bin::put_u64(&mut out, c.onboard_at_pickup.len() as u64);
    for &n in &c.onboard_at_pickup {
        bin::put_u64(&mut out, n as u64);
    }
    for &t in &c.pickup_clock_seconds {
        bin::put_f64(&mut out, t);
    }
    bin::put_u64(&mut out, c.per_vehicle_max_onboard.len() as u64);
    for (&vid, &max) in &c.per_vehicle_max_onboard {
        bin::put_u32(&mut out, vid);
        bin::put_u64(&mut out, max as u64);
    }
    bin::put_f64(&mut out, c.fleet_distance_m);

    // Records walk in trip order by construction: the record map is a
    // `BTreeMap`, so identical states produce identical bytes.
    bin::put_u64(&mut out, view.records.len() as u64);
    for (&trip, rec) in view.records {
        bin::put_u64(&mut out, trip);
        bin::put_f64(&mut out, rec.submitted_m);
        bin::put_f64(&mut out, rec.direct_m);
        bin::put_f64(&mut out, rec.max_wait_m);
        bin::put_f64(&mut out, rec.max_ride_m);
        codec::put_opt_f64(&mut out, rec.picked_up_m);
    }

    bin::put_u64(&mut out, view.trace.len() as u64);
    for e in view.trace.iter() {
        bin::put_u64(&mut out, e.trip);
        bin::put_f64(&mut out, e.submitted_s);
        codec::put_opt_u32(&mut out, e.vehicle);
        codec::put_opt_f64(&mut out, e.assignment_cost_m);
        bin::put_u64(&mut out, e.candidates as u64);
        codec::put_opt_f64(&mut out, e.picked_up_s);
        codec::put_opt_f64(&mut out, e.delivered_s);
        bin::put_f64(&mut out, e.direct_m);
        codec::put_opt_f64(&mut out, e.ride_m);
    }

    let checksum = bin::fnv1a(&out);
    bin::put_u64(&mut out, checksum);
    out
}

impl Simulation<'_> {
    /// Serialises the complete simulation state plus the position in the
    /// trip stream (`next_trip` = number of trips already submitted).
    /// `trips_digest` is [`digest_trips`] of the stream being replayed;
    /// compute it once per run, not per checkpoint.
    pub fn checkpoint_bytes(&self, next_trip: usize, trips_digest: u64) -> Vec<u8> {
        let view = SnapshotView {
            graph: self.graph,
            config: &self.config,
            clock_m: self.clock_m,
            vehicles: self.vehicles.iter().collect(),
            motions: self.motions.iter().collect(),
            stats: self.dispatcher.stats().clone(),
            collector: &self.collector,
            records: &self.records,
            trace: &self.trace,
        };
        encode_snapshot(&view, next_trip, trips_digest)
    }

    /// Writes [`Simulation::checkpoint_bytes`] to `path` atomically (via a
    /// sibling temp file + rename), so an interruption mid-write leaves the
    /// previous checkpoint intact.
    pub fn write_checkpoint<P: AsRef<Path>>(
        &self,
        path: P,
        next_trip: usize,
        trips_digest: u64,
    ) -> Result<(), RoadNetError> {
        let path = path.as_ref();
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.checkpoint_bytes(next_trip, trips_digest))?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Restores a sequential simulation from checkpoint bytes, verifying
    /// the (network, config, trip stream) binding. Returns the simulation
    /// and the index of the next trip to submit.
    ///
    /// ```
    /// use rideshare_sim::{digest_trips, SimConfig, Simulation};
    /// use rideshare_workload::{CityConfig, DemandConfig, Workload};
    /// use roadnet::CachedOracle;
    ///
    /// let w = Workload::generate(&CityConfig::small(), &DemandConfig::default(), 2);
    /// let oracle = CachedOracle::without_labels(&w.network);
    /// let config = SimConfig { vehicles: 10, ..SimConfig::default() };
    /// let digest = digest_trips(&w.trips);
    ///
    /// // Replay half the stream, snapshot, and resume from the snapshot.
    /// let mut sim = Simulation::new(&w.network, &oracle, config);
    /// let half = w.trips.len() / 2;
    /// for trip in &w.trips[..half] {
    ///     sim.advance_all(sim.config().seconds_to_meters(trip.time_seconds));
    ///     sim.submit(trip);
    /// }
    /// let bytes = sim.checkpoint_bytes(half, digest);
    /// let (resumed, next) =
    ///     Simulation::resume(&w.network, &oracle, config, &w.trips, &bytes).unwrap();
    /// assert_eq!(next, half);
    /// // The restored engine picks up exactly where the snapshot was taken.
    /// assert_eq!(resumed.clock_seconds(), sim.clock_seconds());
    /// assert_eq!(resumed.dispatch_stats().requests, half as u64);
    /// ```
    pub fn resume<'a>(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        config: SimConfig,
        trips: &[TripEvent],
        bytes: &[u8],
    ) -> Result<(Simulation<'a>, usize), RoadNetError> {
        let sim = Simulation::build(graph, oracle, None, config);
        restore(sim, trips, bytes)
    }

    /// Restores a simulation whose dispatcher and movement fan out across
    /// [`SimConfig::workers`] threads (the counterpart of
    /// [`Simulation::with_parallel`]). A checkpoint written by either
    /// engine restores into either: results are bit-identical at any
    /// worker count.
    pub fn resume_parallel<'a>(
        graph: &'a RoadNetwork,
        oracle: &'a (dyn DistanceOracle + Sync),
        config: SimConfig,
        trips: &[TripEvent],
        bytes: &[u8],
    ) -> Result<(Simulation<'a>, usize), RoadNetError> {
        let sim = Simulation::build(graph, oracle, Some(oracle), config);
        restore(sim, trips, bytes)
    }

    /// Convenience wrapper: reads `path` and delegates to
    /// [`Simulation::resume`].
    pub fn resume_from_file<'a, P: AsRef<Path>>(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        config: SimConfig,
        trips: &[TripEvent],
        path: P,
    ) -> Result<(Simulation<'a>, usize), RoadNetError> {
        let bytes = std::fs::read(path)?;
        Self::resume(graph, oracle, config, trips, &bytes)
    }
}

impl<'a> ShardedSimulation<'a> {
    /// Serialises the complete sharded-run state in the same RSCK v1
    /// layout as [`Simulation::checkpoint_bytes`]: the fleet is assembled
    /// across shards in ascending vehicle-id order and the per-shard
    /// dispatcher statistics are merged, so the snapshot is engine-neutral
    /// — it restores into a single-shard engine, or into a sharded engine
    /// under **any** partition (shard ownership is derived state, not part
    /// of the image).
    pub fn checkpoint_bytes(&self, next_trip: usize, trips_digest: u64) -> Vec<u8> {
        let (vehicles, motions) = self.ordered_state();
        let view = SnapshotView {
            graph: self.graph(),
            config: self.config(),
            clock_m: self.clock_m(),
            vehicles,
            motions,
            stats: self.dispatch_stats(),
            collector: &self.collector,
            records: &self.records,
            trace: &self.trace,
        };
        encode_snapshot(&view, next_trip, trips_digest)
    }

    /// Writes [`ShardedSimulation::checkpoint_bytes`] to `path` atomically
    /// (sibling temp file + rename), like
    /// [`Simulation::write_checkpoint`].
    pub fn write_checkpoint<P: AsRef<Path>>(
        &self,
        path: P,
        next_trip: usize,
        trips_digest: u64,
    ) -> Result<(), RoadNetError> {
        let path = path.as_ref();
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.checkpoint_bytes(next_trip, trips_digest))?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Restores a sharded simulation from checkpoint bytes, verifying the
    /// (network, config, trip stream) binding exactly as
    /// [`Simulation::resume`] does. The partition is **not** part of the
    /// binding: restored vehicles are scattered to the shard owning their
    /// snapshotted position, so a checkpoint taken by the single-shard
    /// engine — or by a sharded engine under a different
    /// [`PartitionSpec`] — adapts correctly instead of being refused.
    pub fn resume(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        partition: PartitionSpec,
        config: SimConfig,
        trips: &[TripEvent],
        bytes: &[u8],
    ) -> Result<(ShardedSimulation<'a>, usize), RoadNetError> {
        let state = decode_snapshot(graph, &config, trips, bytes)?;
        let mut sim = ShardedSimulation::new(graph, oracle, partition, config);
        sim.set_clock_m(state.clock_m);
        sim.adopt_fleet(state.vehicles, state.motions);
        sim.carried_stats = state.stats;
        sim.collector = state.collector;
        sim.records = state.records;
        sim.trace = state.trace;
        Ok((sim, state.next_trip))
    }

    /// Convenience wrapper: reads `path` and delegates to
    /// [`ShardedSimulation::resume`].
    pub fn resume_from_file<P: AsRef<Path>>(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        partition: PartitionSpec,
        config: SimConfig,
        trips: &[TripEvent],
        path: P,
    ) -> Result<(ShardedSimulation<'a>, usize), RoadNetError> {
        let bytes = std::fs::read(path)?;
        Self::resume(graph, oracle, partition, config, trips, &bytes)
    }
}

/// Everything a checkpoint restores, decoded and validated but not yet
/// committed to an engine. `vehicles` and `motions` are aligned and in
/// ascending id order.
pub(crate) struct DecodedState {
    pub(crate) next_trip: usize,
    pub(crate) clock_m: f64,
    pub(crate) vehicles: Vec<Vehicle>,
    pub(crate) motions: Vec<Motion>,
    pub(crate) stats: DispatchStats,
    pub(crate) collector: MetricsCollector,
    pub(crate) records: BTreeMap<TripId, TripRecord>,
    pub(crate) trace: TraceLog,
}

/// Decodes `bytes` into the freshly built `sim`, replacing every piece of
/// run state. The builder placed vehicles and seeded RNG streams already;
/// all of that is overwritten, so the restored simulation continues exactly
/// where the snapshot was taken.
fn restore<'a>(
    mut sim: Simulation<'a>,
    trips: &[TripEvent],
    bytes: &[u8],
) -> Result<(Simulation<'a>, usize), RoadNetError> {
    let state = decode_snapshot(sim.graph, &sim.config, trips, bytes)?;
    // Everything parsed; commit the state. The spatial index is derived
    // state: each vehicle is indexed at the last vertex it reached.
    let mut index = GridIndex::new(sim.config.grid_cell_meters.max(1.0));
    for (vid, m) in state.motions.iter().enumerate() {
        let p = sim.graph.point(m.at);
        index.insert(vid as u32, Position::new(p.x, p.y));
    }
    sim.clock_m = state.clock_m;
    sim.vehicles = state.vehicles;
    sim.motions = state.motions;
    sim.index = index;
    sim.dispatcher.set_stats(state.stats);
    sim.collector = state.collector;
    sim.records = state.records;
    sim.trace = state.trace;
    Ok((sim, state.next_trip))
}

/// Validates the header binding (checksum, magic, version, network
/// fingerprint, config digest, trips digest) and decodes the full run
/// state. Shared by both engines' resume paths.
pub(crate) fn decode_snapshot(
    graph: &RoadNetwork,
    config: &SimConfig,
    trips: &[TripEvent],
    bytes: &[u8],
) -> Result<DecodedState, RoadNetError> {
    if bytes.len() < 8 {
        return Err(RoadNetError::Persist(format!(
            "checkpoint is only {} bytes; not even a checksum fits",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = bin::fnv1a(body);
    if stored != computed {
        return Err(RoadNetError::Persist(format!(
            "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }

    let mut r = Reader::new(body);
    let magic = r.bytes(4, "checkpoint magic")?;
    if magic != MAGIC {
        return Err(RoadNetError::Persist(format!(
            "bad magic {magic:?} (expected {MAGIC:?}); not a simulation checkpoint"
        )));
    }
    let version = r.u32("checkpoint version")?;
    if version != VERSION {
        return Err(RoadNetError::Persist(format!(
            "unsupported checkpoint version {version} (this build reads {VERSION})"
        )));
    }
    let fingerprint = r.u64("checkpoint network fingerprint")?;
    if fingerprint != graph.fingerprint() {
        return Err(RoadNetError::Persist(format!(
            "checkpoint was taken on a different road network: file fingerprint \
             {fingerprint:#018x}, this network is {:#018x}",
            graph.fingerprint()
        )));
    }
    let config_digest = r.u64("checkpoint config digest")?;
    if config_digest != digest_config(config) {
        return Err(RoadNetError::Persist(
            "checkpoint was taken under a different simulation configuration".to_string(),
        ));
    }
    let trips_digest = r.u64("checkpoint trips digest")?;
    if trips_digest != digest_trips(trips) {
        return Err(RoadNetError::Persist(
            "checkpoint was taken over a different trip stream".to_string(),
        ));
    }

    let next_trip = r.u64("checkpoint next trip")? as usize;
    if next_trip > trips.len() {
        return Err(RoadNetError::Persist(format!(
            "checkpoint points at trip {next_trip} but the stream has {}",
            trips.len()
        )));
    }
    let clock_m = r.f64("checkpoint clock")?;

    let fleet = codec::read_len(&mut r, 32, "checkpoint fleet size")?;
    if fleet != config.vehicles {
        return Err(RoadNetError::Persist(format!(
            "checkpoint holds {fleet} vehicles but the configuration asks for {}",
            config.vehicles
        )));
    }
    let mut vehicles = Vec::with_capacity(fleet);
    for i in 0..fleet {
        let v = Vehicle::decode(&mut r)?;
        if v.id() as usize != i {
            return Err(RoadNetError::Persist(format!(
                "checkpoint vehicle {i} carries id {}",
                v.id()
            )));
        }
        vehicles.push(v);
    }
    let n = graph.node_count() as u32;
    let mut motions = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        let at = r.u32("motion position")?;
        if at >= n {
            return Err(RoadNetError::Persist(format!(
                "motion position {at} is outside the {n}-node network"
            )));
        }
        let at_clock_m = r.f64("motion clock")?;
        let next_arrival_m = r.f64("motion next arrival")?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64("motion rng state")?;
        }
        let legs = codec::read_len(&mut r, 12, "motion path length")?;
        let mut path = std::collections::VecDeque::with_capacity(legs);
        for _ in 0..legs {
            let node = r.u32("motion path node")?;
            if node >= n {
                return Err(RoadNetError::Persist(format!(
                    "motion path node {node} is outside the {n}-node network"
                )));
            }
            let leg = r.f64("motion path leg")?;
            path.push_back((node, leg));
        }
        motions.push(Motion {
            path,
            next_arrival_m,
            at,
            at_clock_m,
            rng: StdRng::from_state(state),
        });
    }

    let stats = read_stats(&mut r)?;

    let waits = codec::read_len(&mut r, 8, "metrics wait count")?;
    let wait_seconds = (0..waits)
        .map(|_| r.f64("metrics wait"))
        .collect::<Result<_, _>>()?;
    let detours = codec::read_len(&mut r, 8, "metrics detour count")?;
    let detour_ratios = (0..detours)
        .map(|_| r.f64("metrics detour"))
        .collect::<Result<_, _>>()?;
    let guarantee_violations = r.u64("metrics violations")?;
    let completed = r.u64("metrics completed")?;
    let pickups = codec::read_len(&mut r, 16, "metrics pickup count")?;
    let onboard_at_pickup = (0..pickups)
        .map(|_| r.u64("metrics onboard").map(|v| v as usize))
        .collect::<Result<_, _>>()?;
    let pickup_clock_seconds = (0..pickups)
        .map(|_| r.f64("metrics pickup clock"))
        .collect::<Result<_, _>>()?;
    let maxima = codec::read_len(&mut r, 12, "metrics per-vehicle count")?;
    let mut per_vehicle_max_onboard = std::collections::BTreeMap::new();
    for _ in 0..maxima {
        let vid = r.u32("metrics vehicle id")?;
        let max = r.u64("metrics vehicle max")? as usize;
        per_vehicle_max_onboard.insert(vid, max);
    }
    let fleet_distance_m = r.f64("metrics fleet distance")?;

    let record_count = codec::read_len(&mut r, 41, "record count")?;
    let mut records = BTreeMap::new();
    for _ in 0..record_count {
        let trip = r.u64("record trip")?;
        let rec = TripRecord {
            submitted_m: r.f64("record submitted")?,
            direct_m: r.f64("record direct")?,
            max_wait_m: r.f64("record max wait")?,
            max_ride_m: r.f64("record max ride")?,
            picked_up_m: codec::read_opt_f64(&mut r, "record pickup")?,
        };
        records.insert(trip, rec);
    }

    let trace_count = codec::read_len(&mut r, 35, "trace count")?;
    let mut trace = TraceLog::new();
    for _ in 0..trace_count {
        let entry = RequestTrace {
            trip: r.u64("trace trip")?,
            submitted_s: r.f64("trace submitted")?,
            vehicle: codec::read_opt_u32(&mut r, "trace vehicle")?,
            assignment_cost_m: codec::read_opt_f64(&mut r, "trace cost")?,
            candidates: r.u64("trace candidates")? as usize,
            picked_up_s: codec::read_opt_f64(&mut r, "trace pickup")?,
            delivered_s: codec::read_opt_f64(&mut r, "trace delivery")?,
            direct_m: r.f64("trace direct")?,
            ride_m: codec::read_opt_f64(&mut r, "trace ride")?,
        };
        trace.push(entry);
    }
    if r.remaining() != 0 {
        return Err(RoadNetError::Persist(format!(
            "checkpoint has {} trailing bytes after the last section",
            r.remaining()
        )));
    }

    let collector = MetricsCollector {
        wait_seconds,
        detour_ratios,
        guarantee_violations,
        completed,
        onboard_at_pickup,
        pickup_clock_seconds,
        per_vehicle_max_onboard,
        fleet_distance_m,
    };
    Ok(DecodedState {
        next_trip,
        clock_m,
        vehicles,
        motions,
        stats,
        collector,
        records,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinetic_core::{KineticConfig, PlannerKind};
    use rideshare_workload::{CityConfig, DemandConfig, Workload};
    use roadnet::CachedOracle;

    fn workload(trips: usize, seed: u64) -> Workload {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 2.0 * 3_600.0,
                ..DemandConfig::default()
            },
            seed,
        )
    }

    fn config() -> SimConfig {
        SimConfig {
            vehicles: 12,
            seed: 5,
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            cruise_when_idle: true,
            ..SimConfig::default()
        }
    }

    /// Submits `trips[from..]`, advancing the clock as [`Simulation::run`]
    /// does, then drains.
    fn run_tail(sim: &mut Simulation<'_>, trips: &[TripEvent], from: usize) {
        for trip in &trips[from..] {
            let t_m = sim.config().seconds_to_meters(trip.time_seconds);
            sim.advance_all(t_m);
            sim.submit(trip);
        }
        sim.drain();
    }

    /// Deterministic observable state of a finished run: the full report
    /// minus its wall-clock latency means, the trace, and the fleet's
    /// final geometry.
    fn observables(sim: &Simulation<'_>) -> (Vec<String>, Vec<RequestTrace>, Vec<u32>) {
        let report = sim.report();
        let fields = vec![
            format!("requests={}", report.requests),
            format!("assigned={}", report.assigned),
            format!("rejected={}", report.rejected),
            format!("completed={}", report.completed),
            format!("violations={}", report.guarantee_violations),
            format!("wait={:?}", report.mean_wait_seconds.to_bits()),
            format!("detour={:?}", report.mean_detour_ratio.to_bits()),
            format!("dist={:?}", report.fleet_distance_km.to_bits()),
            format!(
                "per_delivery={:?}",
                report.distance_per_delivery_km.to_bits()
            ),
            format!("occ={:?}", report.occupancy),
            format!("cand={:?}", report.mean_candidates.to_bits()),
            format!("span={:?}", report.span_seconds.to_bits()),
            format!(
                "art_counts={:?}",
                report
                    .art_table
                    .iter()
                    .map(|&(k, c, _)| (k, c))
                    .collect::<Vec<_>>()
            ),
        ];
        let trace = sim.trace().iter().copied().collect();
        let locations = sim.vehicles().iter().map(|v| v.location()).collect();
        (fields, trace, locations)
    }

    #[test]
    fn resume_matches_straight_through_run() {
        let w = workload(60, 9);
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);

        let mut straight = Simulation::new(&w.network, &oracle, config());
        run_tail(&mut straight, &w.trips, 0);
        let expect = observables(&straight);

        for cut in [1usize, 17, 30, 59] {
            let mut first = Simulation::new(&w.network, &oracle, config());
            for trip in &w.trips[..cut] {
                let t_m = first.config().seconds_to_meters(trip.time_seconds);
                first.advance_all(t_m);
                first.submit(trip);
            }
            let bytes = first.checkpoint_bytes(cut, digest);
            drop(first);
            let (mut resumed, next) =
                Simulation::resume(&w.network, &oracle, config(), &w.trips, &bytes).unwrap();
            assert_eq!(next, cut);
            run_tail(&mut resumed, &w.trips, next);
            let got = observables(&resumed);
            assert_eq!(got.0, expect.0, "report diverged after resume at {cut}");
            assert_eq!(got.1, expect.1, "trace diverged after resume at {cut}");
            assert_eq!(got.2, expect.2, "fleet diverged after resume at {cut}");
        }
    }

    #[test]
    fn sequential_checkpoint_resumes_on_the_parallel_engine() {
        let w = workload(40, 3);
        let digest = digest_trips(&w.trips);
        let seq_oracle = CachedOracle::without_labels(&w.network);
        let mut straight = Simulation::new(&w.network, &seq_oracle, config());
        run_tail(&mut straight, &w.trips, 0);
        let expect = observables(&straight);

        let cut = 15;
        let mut first = Simulation::new(&w.network, &seq_oracle, config());
        for trip in &w.trips[..cut] {
            let t_m = first.config().seconds_to_meters(trip.time_seconds);
            first.advance_all(t_m);
            first.submit(trip);
        }
        let bytes = first.checkpoint_bytes(cut, digest);

        let par_oracle = roadnet::ShardedOracle::without_labels(&w.network);
        let par_config = SimConfig {
            workers: 4,
            dispatcher: kinetic_core::DispatcherConfig {
                min_parallel_items: 0,
                ..config().dispatcher
            },
            ..config()
        };
        let (mut resumed, next) =
            Simulation::resume_parallel(&w.network, &par_oracle, par_config, &w.trips, &bytes)
                .unwrap();
        run_tail(&mut resumed, &w.trips, next);
        let got = observables(&resumed);
        assert_eq!(got.0, expect.0);
        assert_eq!(got.1, expect.1);
        assert_eq!(got.2, expect.2);
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let w = workload(20, 7);
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);
        let mut sim = Simulation::new(&w.network, &oracle, config());
        for trip in &w.trips[..10] {
            let t_m = sim.config().seconds_to_meters(trip.time_seconds);
            sim.advance_all(t_m);
            sim.submit(trip);
        }
        let bytes = sim.checkpoint_bytes(10, digest);
        for len in 0..bytes.len() {
            match Simulation::resume(&w.network, &oracle, config(), &w.trips, &bytes[..len]) {
                Err(RoadNetError::Persist(_)) => {}
                other => panic!(
                    "truncation at {len} produced {:?}",
                    other.map(|(_, next)| next)
                ),
            }
        }
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let w = workload(15, 2);
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);
        let mut sim = Simulation::new(&w.network, &oracle, config());
        for trip in &w.trips[..8] {
            let t_m = sim.config().seconds_to_meters(trip.time_seconds);
            sim.advance_all(t_m);
            sim.submit(trip);
        }
        let bytes = sim.checkpoint_bytes(8, digest);
        for pos in [5usize, 40, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                matches!(
                    Simulation::resume(&w.network, &oracle, config(), &w.trips, &corrupt),
                    Err(RoadNetError::Persist(_))
                ),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn mismatched_inputs_are_refused() {
        let w = workload(15, 2);
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);
        let sim = Simulation::new(&w.network, &oracle, config());
        let bytes = sim.checkpoint_bytes(0, digest);

        // Different network.
        let other = workload(15, 8);
        let other_oracle = CachedOracle::without_labels(&other.network);
        assert!(matches!(
            Simulation::resume(&other.network, &other_oracle, config(), &w.trips, &bytes),
            Err(RoadNetError::Persist(msg)) if msg.contains("different road network")
        ));
        // Different configuration.
        let different = SimConfig {
            capacity: 6,
            ..config()
        };
        assert!(matches!(
            Simulation::resume(&w.network, &oracle, different, &w.trips, &bytes),
            Err(RoadNetError::Persist(msg)) if msg.contains("configuration")
        ));
        // Worker knobs are deliberately NOT part of the binding.
        let more_workers = SimConfig {
            workers: 1,
            dispatcher: kinetic_core::DispatcherConfig {
                min_parallel_items: 0,
                ..config().dispatcher
            },
            ..config()
        };
        assert!(Simulation::resume(&w.network, &oracle, more_workers, &w.trips, &bytes).is_ok());
        // Different trip stream.
        assert!(matches!(
            Simulation::resume(&w.network, &oracle, config(), &other.trips, &bytes),
            Err(RoadNetError::Persist(msg)) if msg.contains("trip stream")
        ));
    }

    #[test]
    fn write_checkpoint_is_atomic_and_loadable() {
        let w = workload(12, 4);
        let digest = digest_trips(&w.trips);
        let oracle = CachedOracle::without_labels(&w.network);
        let mut sim = Simulation::new(&w.network, &oracle, config());
        for trip in &w.trips[..5] {
            let t_m = sim.config().seconds_to_meters(trip.time_seconds);
            sim.advance_all(t_m);
            sim.submit(trip);
        }
        let dir = std::env::temp_dir().join("rideshare_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.ckpt");
        sim.write_checkpoint(&path, 5, digest).unwrap();
        let (resumed, next) =
            Simulation::resume_from_file(&w.network, &oracle, config(), &w.trips, &path).unwrap();
        assert_eq!(next, 5);
        assert_eq!(resumed.dispatch_stats().requests, 5);
        std::fs::remove_file(path).ok();
    }
}

//! The sharded simulation engine: the city partitioned into regions, each
//! region's fleet owned by one shard, cross-region traffic exchanged
//! through a message broker — bit-identical to the single-shard engine.
//!
//! # Architecture
//!
//! A [`roadnet::PartitionSpec`] splits the road network into `k` regions.
//! [`ShardedSimulation`] runs one shard's worth of state per region:
//! the vehicles whose current position lies in the region, their motion
//! state, and a private `Dispatcher` that serves the requests picked up
//! inside the region. Shards never touch each other's state directly;
//! everything that crosses a region boundary travels as a time-stamped
//! [`Envelope`] through the [`ShardBroker`]:
//!
//! - **Vehicle migrations** — a vehicle whose drive crossed into another
//!   region is shipped (vehicle + motion + RNG stream) to its new owner.
//!   Migration envelopes are drained at the **tick barrier**, after the
//!   movement phase of every shard has completed, in deterministic
//!   `(tick, from-shard, seq)` order.
//! - **Candidate borrows** — a request whose candidate set spans regions
//!   makes the owning shard borrow read-only copies of the remote
//!   candidates for evaluation.
//! - **Cross-region commits** — when the winning vehicle lives in another
//!   shard, the committed schedule is shipped home. Borrow/commit
//!   envelopes carry the same `(tick, shard, seq)` stamps but are drained
//!   at the dispatch point inside the tick: the paper's service guarantee
//!   (and bit-identity with the single-shard engine) requires an
//!   assignment to be visible before the next request in the same window
//!   is evaluated.
//!
//! # Determinism by construction
//!
//! The sharded engine reproduces the single-shard
//! [`Simulation`](crate::Simulation)'s
//! observable behaviour **bit for bit** at any shard count (the only
//! exception is wall-clock latency means, which are not a function of
//! simulation state). The load-bearing decisions:
//!
//! - Fleet placement replays the exact `Simulation::build` RNG sequence,
//!   then scatters vehicles by region — ids, start nodes and per-vehicle
//!   cruising streams are unchanged.
//! - Candidate filtering runs against one **global** spatial index, so a
//!   request sees the same candidate ids in the same order regardless of
//!   which shards own them.
//! - Movement outcomes are applied to the metrics/trace/index in global
//!   ascending vehicle-id order (not shard order), pinning the f64
//!   accumulation order the single-shard engine uses.
//! - All broker traffic is totally ordered by `(tick, shard, seq)` and
//!   the queues are plain FIFO vectors — no hash-map iteration order, no
//!   wall clock, no thread scheduling can influence delivery order.
//!
//! The equivalence is property-tested across random workloads, planner
//! kinds and shard counts in `tests/proptest_shard.rs` and gated in CI by
//! the `shard_smoke` bench.

use std::collections::{BTreeMap, VecDeque};

use kinetic_core::{AssignmentOutcome, DispatchStats, Dispatcher, TripId, TripRequest, Vehicle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rideshare_workload::TripEvent;
use roadnet::{DistanceOracle, NodeId, PartitionSpec, RoadNetwork};
use spatial::{GridIndex, Position};
use workpool::WorkPool;

use crate::config::SimConfig;
use crate::engine::{
    advance_one, apply_outcome_to, effective_position, replan_after_assignment, AdvanceOutcome,
    Motion, TripRecord,
};
use crate::metrics::{MetricsCollector, SimReport};
use crate::trace::{RequestTrace, TraceLog};

/// A message travelling between shards.
#[derive(Debug)]
pub enum ShardMessage {
    /// A vehicle (plus its motion state and cruising RNG stream) whose
    /// position crossed into the destination shard's region.
    Migrate {
        /// The vehicle changing owners.
        vehicle: Box<Vehicle>,
        /// Its motion state, shipped alongside so the new owner can
        /// continue the drive mid-leg.
        motion: Box<Motion>,
    },
    /// A read-only copy of a remote candidate vehicle, lent to the shard
    /// dispatching a boundary request.
    Borrow {
        /// Snapshot of the remote candidate at evaluation time.
        vehicle: Box<Vehicle>,
    },
    /// The committed schedule of a cross-region assignment, shipped back
    /// to the winning vehicle's owner.
    Commit {
        /// The vehicle with the newly committed trip on board.
        vehicle: Box<Vehicle>,
    },
}

/// One time-stamped message in flight between shards.
#[derive(Debug)]
pub struct Envelope {
    /// Tick (barrier index) at which the message was sent.
    pub tick: u64,
    /// Sending shard.
    pub from: u16,
    /// Global send sequence number — the total-order tie-breaker.
    pub seq: u64,
    /// Payload.
    pub msg: ShardMessage,
}

/// Per-destination FIFO queues of time-stamped envelopes.
///
/// Sends are stamped with `(tick, from, seq)`; [`ShardBroker::drain`]
/// returns a destination's pending messages sorted by that stamp, so the
/// delivery order is a pure function of the send order — which is itself
/// deterministic — and never of any map iteration or thread schedule.
#[derive(Debug)]
pub struct ShardBroker {
    queues: Vec<VecDeque<Envelope>>,
    seq: u64,
}

impl ShardBroker {
    /// A broker serving `shards` destinations.
    pub fn new(shards: usize) -> Self {
        ShardBroker {
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            seq: 0,
        }
    }

    /// Enqueues `msg` for shard `to`, stamped `(tick, from, seq)`.
    pub fn send(&mut self, to: u16, tick: u64, from: u16, msg: ShardMessage) {
        let seq = self.seq;
        self.seq += 1;
        self.queues[to as usize].push_back(Envelope {
            tick,
            from,
            seq,
            msg,
        });
    }

    /// Removes and returns every message pending for `to`, in
    /// `(tick, from, seq)` order.
    pub fn drain(&mut self, to: u16) -> Vec<Envelope> {
        let mut out: Vec<Envelope> = self.queues[to as usize].drain(..).collect();
        out.sort_by_key(|e| (e.tick, e.from, e.seq));
        out
    }

    /// Number of messages currently queued across all destinations.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Broker traffic counters, exposed for benches and tests to prove the
/// sharded machinery is actually exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardNetStats {
    /// Vehicles that changed owning shard at a tick barrier.
    pub migrations: u64,
    /// Remote candidate copies lent across shards for evaluation.
    pub borrows: u64,
    /// Assignments whose winning vehicle lived in another shard.
    pub cross_commits: u64,
    /// Requests whose whole candidate set was local to the owning shard.
    pub local_requests: u64,
    /// Requests that needed at least one remote candidate.
    pub boundary_requests: u64,
}

/// One region's worth of simulation state: the vehicles currently inside
/// the region (sorted by id), their motions, and the region's dispatcher.
struct Shard {
    region: u16,
    dispatcher: Dispatcher,
    vehicles: Vec<Vehicle>,
    motions: Vec<Motion>,
}

impl Shard {
    fn pos_of(&self, vid: u32) -> Option<usize> {
        self.vehicles.binary_search_by_key(&vid, |v| v.id()).ok()
    }

    /// Advances every owned vehicle, returning `(vehicle id, outcome)`
    /// pairs. Pure per-vehicle work — the parallel arm fans shards out
    /// across threads.
    fn advance(
        &mut self,
        graph: &RoadNetwork,
        oracle: &dyn DistanceOracle,
        cruise: bool,
        until_m: f64,
    ) -> Vec<(u32, AdvanceOutcome)> {
        self.vehicles
            .iter_mut()
            .zip(self.motions.iter_mut())
            .map(|(v, m)| (v.id(), advance_one(v, m, graph, oracle, cruise, until_m)))
            .collect()
    }

    fn insert(&mut self, vehicle: Vehicle, motion: Motion) {
        let pos = self
            .vehicles
            .binary_search_by_key(&vehicle.id(), |v| v.id())
            .unwrap_err();
        self.vehicles.insert(pos, vehicle);
        self.motions.insert(pos, motion);
    }

    fn remove(&mut self, pos: usize) -> (Vehicle, Motion) {
        (self.vehicles.remove(pos), self.motions.remove(pos))
    }
}

/// The sharded counterpart of [`Simulation`]: same configuration, same
/// workload, same observable results, but the fleet is partitioned by
/// city region and all cross-region traffic flows through a
/// [`ShardBroker`].
///
/// ```
/// use rideshare_sim::{ShardedSimulation, SimConfig, Simulation};
/// use rideshare_workload::{CityConfig, DemandConfig, Workload};
/// use roadnet::{CachedOracle, PartitionSpec};
///
/// let w = Workload::generate(
///     &CityConfig::small(),
///     &DemandConfig { trips: 20, ..DemandConfig::default() },
///     1,
/// );
/// let oracle = CachedOracle::without_labels(&w.network);
/// let config = SimConfig { vehicles: 8, ..SimConfig::default() };
///
/// let mut single = Simulation::new(&w.network, &oracle, config);
/// let expect = single.run(&w.trips);
///
/// let partition = PartitionSpec::grow(&w.network, 4);
/// let mut sharded = ShardedSimulation::new(&w.network, &oracle, partition, config);
/// let got = sharded.run(&w.trips);
/// assert_eq!(got.assigned, expect.assigned);
/// assert_eq!(got.fleet_distance_km.to_bits(), expect.fleet_distance_km.to_bits());
/// ```
///
/// [`Simulation`]: crate::Simulation
pub struct ShardedSimulation<'a> {
    graph: &'a RoadNetwork,
    oracle: &'a dyn DistanceOracle,
    par_oracle: Option<&'a (dyn DistanceOracle + Sync)>,
    config: SimConfig,
    partition: PartitionSpec,
    shards: Vec<Shard>,
    broker: ShardBroker,
    /// Owning shard of each vehicle id.
    owner_of: Vec<u16>,
    /// Global spatial index over the whole fleet — candidate filtering is
    /// partition-independent by construction.
    index: GridIndex,
    pool: WorkPool,
    clock_m: f64,
    tick: u64,
    pub(crate) collector: MetricsCollector,
    pub(crate) records: BTreeMap<TripId, TripRecord>,
    pub(crate) trace: TraceLog,
    /// Statistics restored from a checkpoint (merged into reports).
    pub(crate) carried_stats: DispatchStats,
    net: ShardNetStats,
    verify_invariants: bool,
}

impl<'a> ShardedSimulation<'a> {
    /// Creates a sharded simulation over `partition`. Fleet placement is
    /// identical to [`Simulation::new`] (same seed, same RNG sequence);
    /// vehicles are then scattered to the shard owning their start node.
    ///
    /// # Panics
    /// Panics when [`SimConfig::workers`] is greater than 1 — use
    /// [`ShardedSimulation::with_parallel`] with a `Sync` oracle.
    ///
    /// [`Simulation::new`]: crate::Simulation::new
    pub fn new(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        partition: PartitionSpec,
        config: SimConfig,
    ) -> Self {
        Self::build(graph, oracle, None, partition, config)
    }

    /// Creates a sharded simulation whose movement phase fans shards out
    /// across [`SimConfig::workers`] threads (each shard is advanced in
    /// isolation; results are bit-identical at any worker count).
    pub fn with_parallel(
        graph: &'a RoadNetwork,
        oracle: &'a (dyn DistanceOracle + Sync),
        partition: PartitionSpec,
        config: SimConfig,
    ) -> Self {
        Self::build(graph, oracle, Some(oracle), partition, config)
    }

    fn build(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        par_oracle: Option<&'a (dyn DistanceOracle + Sync)>,
        partition: PartitionSpec,
        config: SimConfig,
    ) -> Self {
        assert!(
            par_oracle.is_some() || config.workers <= 1,
            "SimConfig::workers = {} has no effect through ShardedSimulation::new; \
             use ShardedSimulation::with_parallel with a Sync oracle",
            config.workers
        );
        // Replay Simulation::build's placement RNG exactly, then scatter.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut index = GridIndex::new(config.grid_cell_meters.max(1.0));
        let mut shards: Vec<Shard> = (0..partition.regions())
            .map(|r| Shard {
                region: r as u16,
                dispatcher: Dispatcher::new(config.dispatcher),
                vehicles: Vec::new(),
                motions: Vec::new(),
            })
            .collect();
        let mut owner_of = Vec::with_capacity(config.vehicles);
        let n = graph.node_count() as u64;
        for id in 0..config.vehicles as u32 {
            let start = (rng.gen::<u64>() % n) as NodeId;
            let v = Vehicle::new(id, start, config.capacity, config.planner, 0.0);
            let p = graph.point(start);
            index.insert(id, Position::new(p.x, p.y));
            let stream = config
                .seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let region = partition.region_of(start);
            owner_of.push(region);
            shards[region as usize].vehicles.push(v);
            shards[region as usize]
                .motions
                .push(Motion::parked_at(start, StdRng::seed_from_u64(stream)));
        }
        let broker = ShardBroker::new(shards.len());
        let pool =
            WorkPool::new(config.workers).run_inline_below(config.dispatcher.min_parallel_items);
        ShardedSimulation {
            graph,
            oracle,
            par_oracle,
            config,
            partition,
            shards,
            broker,
            owner_of,
            index,
            pool,
            clock_m: 0.0,
            tick: 0,
            collector: MetricsCollector::default(),
            records: BTreeMap::new(),
            trace: TraceLog::new(),
            carried_stats: DispatchStats::default(),
            net: ShardNetStats::default(),
            verify_invariants: false,
        }
    }

    /// The partition this engine runs under.
    pub fn partition(&self) -> &PartitionSpec {
        &self.partition
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Per-request lifecycle traces collected so far.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Broker traffic counters (migrations, borrows, cross-region
    /// commits).
    pub fn net_stats(&self) -> ShardNetStats {
        self.net
    }

    /// Current simulated clock, in seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.config.meters_to_seconds(self.clock_m)
    }

    /// Merged dispatcher statistics across every shard (plus any carried
    /// over from a checkpoint).
    pub fn dispatch_stats(&self) -> DispatchStats {
        let mut stats = self.carried_stats.clone();
        for s in &self.shards {
            stats.merge(s.dispatcher.stats());
        }
        stats
    }

    /// The fleet, assembled across shards in ascending vehicle-id order.
    pub fn vehicles(&self) -> Vec<&Vehicle> {
        let mut all: Vec<&Vehicle> = self.shards.iter().flat_map(|s| &s.vehicles).collect();
        all.sort_by_key(|v| v.id());
        all
    }

    /// Enables the conservation invariant check at every tick barrier
    /// (every vehicle owned exactly once, owners consistent with the
    /// partition, broker quiescent). Tests drive runs with this on; it
    /// panics on the first violated invariant.
    pub fn set_verify_invariants(&mut self, on: bool) {
        self.verify_invariants = on;
    }

    /// Asserts the cross-shard conservation invariants. Called at every
    /// tick barrier when [`ShardedSimulation::set_verify_invariants`] is
    /// on; public so tests can probe arbitrary points.
    ///
    /// # Panics
    /// Panics when any invariant is violated.
    pub fn check_invariants(&self) {
        let mut seen = vec![0u32; self.config.vehicles];
        for (si, s) in self.shards.iter().enumerate() {
            assert_eq!(s.region as usize, si, "shard {si} region mislabelled");
            assert_eq!(
                s.vehicles.len(),
                s.motions.len(),
                "shard {si} vehicles/motions misaligned"
            );
            let mut prev: Option<u32> = None;
            for (v, m) in s.vehicles.iter().zip(&s.motions) {
                let vid = v.id();
                seen[vid as usize] += 1;
                assert_eq!(
                    self.owner_of[vid as usize] as usize, si,
                    "vehicle {vid} owner table disagrees with shard {si}"
                );
                assert_eq!(
                    self.partition.region_of(m.at),
                    s.region,
                    "vehicle {vid} at node {} belongs to region {} but is owned by shard {si}",
                    m.at,
                    self.partition.region_of(m.at)
                );
                assert!(
                    prev.is_none_or(|p| p < vid),
                    "shard {si} vehicles out of id order"
                );
                prev = Some(vid);
            }
        }
        for (vid, &count) in seen.iter().enumerate() {
            assert_eq!(count, 1, "vehicle {vid} owned {count} times across shards");
        }
        assert_eq!(self.broker.pending(), 0, "broker not quiescent at barrier");
        assert_eq!(
            self.records.len(),
            self.trace.len(),
            "request records and trace disagree"
        );
    }

    /// Runs the full workload — the sharded mirror of
    /// [`Simulation::run`](crate::Simulation::run): same per-request /
    /// batched-window structure, same drain.
    pub fn run(&mut self, trips: &[TripEvent]) -> SimReport {
        let limit = self.config.max_requests.unwrap_or(usize::MAX);
        let trips = &trips[..trips.len().min(limit)];
        let window = self.config.batch_window_seconds;
        if window <= 0.0 {
            for trip in trips {
                let t_m = self.config.seconds_to_meters(trip.time_seconds);
                self.advance_all(t_m);
                self.submit(trip);
            }
        } else {
            let mut start = 0;
            while start < trips.len() {
                let bucket = (trips[start].time_seconds / window).floor();
                let mut end = start + 1;
                while end < trips.len() && (trips[end].time_seconds / window).floor() == bucket {
                    end += 1;
                }
                let batch = &trips[start..end];
                let t_m = self
                    .config
                    .seconds_to_meters(batch[batch.len() - 1].time_seconds);
                self.advance_all(t_m);
                self.submit_batch(batch);
                start = end;
            }
        }
        self.drain();
        self.report()
    }

    /// Advances every shard's fleet to absolute clock `until_m`, then runs
    /// the tick barrier: movement outcomes are reconciled in global
    /// vehicle-id order and vehicles that crossed a region boundary are
    /// migrated through the broker in `(tick, shard, seq)` order.
    pub fn advance_all(&mut self, until_m: f64) {
        let until_m = until_m.max(self.clock_m);
        let graph = self.graph;
        let cruise = self.config.cruise_when_idle;
        // Movement phase: each shard advances its own fleet in isolation.
        let mut outcomes: Vec<(u32, AdvanceOutcome)> =
            match (self.par_oracle, self.config.workers > 1) {
                (Some(oracle), true) => {
                    let mut lanes = vec![(); self.shards.len()];
                    self.pool
                        .zip_chunks_mut(&mut self.shards, &mut lanes, |_, _, shards, _| {
                            shards
                                .iter_mut()
                                .flat_map(|s| s.advance(graph, oracle, cruise, until_m))
                                .collect::<Vec<_>>()
                        })
                        .into_iter()
                        .flatten()
                        .collect()
                }
                _ => {
                    let oracle = self.oracle;
                    self.shards
                        .iter_mut()
                        .flat_map(|s| s.advance(graph, oracle, cruise, until_m))
                        .collect()
                }
            };
        // Barrier, part 1 — reconcile: apply observable effects in global
        // vehicle-id order, exactly as the single-shard engine does.
        outcomes.sort_unstable_by_key(|&(vid, _)| vid);
        for (vid, outcome) in &outcomes {
            apply_outcome_to(
                self.graph,
                &self.config,
                &mut self.index,
                &mut self.collector,
                &mut self.records,
                &mut self.trace,
                *vid,
                outcome,
            );
        }
        self.clock_m = until_m;
        // Barrier, part 2 — migrate: ship every vehicle whose position
        // left its owner's region, then drain per destination in
        // (tick, shard, seq) order.
        for si in 0..self.shards.len() {
            let mut pos = 0;
            while pos < self.shards[si].vehicles.len() {
                let region = self.partition.region_of(self.shards[si].motions[pos].at);
                if region as usize == si {
                    pos += 1;
                    continue;
                }
                let (vehicle, motion) = self.shards[si].remove(pos);
                self.broker.send(
                    region,
                    self.tick,
                    si as u16,
                    ShardMessage::Migrate {
                        vehicle: Box::new(vehicle),
                        motion: Box::new(motion),
                    },
                );
            }
        }
        for si in 0..self.shards.len() {
            for env in self.broker.drain(si as u16) {
                let ShardMessage::Migrate { vehicle, motion } = env.msg else {
                    panic!("only migrations cross a tick barrier");
                };
                self.net.migrations += 1;
                self.owner_of[vehicle.id() as usize] = si as u16;
                self.shards[si].insert(*vehicle, *motion);
            }
        }
        self.tick += 1;
        if self.verify_invariants {
            self.check_invariants();
        }
    }

    /// Submits a single request at the current clock — the sharded mirror
    /// of [`Simulation::submit`](crate::Simulation::submit). The request
    /// is owned by the shard whose region contains the pickup node.
    pub fn submit(&mut self, trip: &TripEvent) -> AssignmentOutcome {
        let request = TripRequest::new(
            trip.id,
            trip.source,
            trip.destination,
            self.clock_m,
            self.config.constraints,
        );
        let direct = self.oracle.dist(trip.source, trip.destination);
        self.records.insert(
            trip.id,
            TripRecord {
                submitted_m: self.clock_m,
                direct_m: direct,
                max_wait_m: self.config.constraints.max_wait,
                max_ride_m: self.config.constraints.max_ride(direct),
                picked_up_m: None,
            },
        );
        let owner = self.partition.region_of(trip.source) as usize;
        let candidates = self.shards[owner].dispatcher.candidates(
            &request,
            self.graph,
            &mut self.index,
            self.config.vehicles,
        );
        self.sync_candidates(&candidates);
        let outcome = self.dispatch_on(owner, &request, &candidates);
        self.trace.push(RequestTrace::submitted(
            trip.id,
            self.config.meters_to_seconds(self.clock_m),
            direct,
            candidates.len(),
        ));
        if let AssignmentOutcome::Assigned { vehicle, cost, .. } = outcome {
            self.trace.record_assignment(trip.id, vehicle, cost);
            self.replan(vehicle);
        }
        outcome
    }

    /// Submits one dispatch window's worth of requests — the sharded
    /// mirror of [`Simulation::submit_batch`](crate::Simulation::submit_batch):
    /// same per-trip submission times, one position sync over the union of
    /// candidate sets, requests dispatched in slice order.
    pub fn submit_batch(&mut self, trips: &[TripEvent]) -> Vec<AssignmentOutcome> {
        if trips.is_empty() {
            return Vec::new();
        }
        let mut requests = Vec::with_capacity(trips.len());
        let mut directs = Vec::with_capacity(trips.len());
        let mut owners = Vec::with_capacity(trips.len());
        let mut candidate_sets = Vec::with_capacity(trips.len());
        let mut to_sync: Vec<u32> = Vec::new();
        for trip in trips {
            let t_m = self.config.seconds_to_meters(trip.time_seconds);
            let request = TripRequest::new(
                trip.id,
                trip.source,
                trip.destination,
                t_m,
                self.config.constraints,
            );
            let direct = self.oracle.dist(trip.source, trip.destination);
            self.records.insert(
                trip.id,
                TripRecord {
                    submitted_m: t_m,
                    direct_m: direct,
                    max_wait_m: self.config.constraints.max_wait,
                    max_ride_m: self.config.constraints.max_ride(direct),
                    picked_up_m: None,
                },
            );
            let owner = self.partition.region_of(trip.source) as usize;
            let candidates = self.shards[owner].dispatcher.candidates(
                &request,
                self.graph,
                &mut self.index,
                self.config.vehicles,
            );
            to_sync.extend(candidates.iter().copied());
            owners.push(owner);
            candidate_sets.push(candidates);
            requests.push(request);
            directs.push(direct);
        }
        to_sync.sort_unstable();
        to_sync.dedup();
        self.sync_candidates(&to_sync);
        let outcomes: Vec<AssignmentOutcome> = requests
            .iter()
            .zip(&owners)
            .zip(&candidate_sets)
            .map(|((request, &owner), candidates)| self.dispatch_on(owner, request, candidates))
            .collect();
        for (((trip, outcome), direct), candidates) in trips
            .iter()
            .zip(&outcomes)
            .zip(&directs)
            .zip(&candidate_sets)
        {
            self.trace.push(RequestTrace::submitted(
                trip.id,
                trip.time_seconds,
                *direct,
                candidates.len(),
            ));
            if let AssignmentOutcome::Assigned { vehicle, cost, .. } = *outcome {
                self.trace.record_assignment(trip.id, vehicle, cost);
                self.replan(vehicle);
            }
        }
        outcomes
    }

    /// Moves every candidate vehicle to its effective position, mutating
    /// it inside its owning shard (mirrors the single-shard sync).
    fn sync_candidates(&mut self, candidates: &[u32]) {
        for &vid in candidates {
            let s = self.owner_of[vid as usize] as usize;
            let shard = &mut self.shards[s];
            let pos = shard.pos_of(vid).expect("owner table is consistent");
            let (node, clock) = effective_position(&shard.motions[pos], self.clock_m);
            shard.vehicles[pos].set_position(node, clock, self.oracle);
        }
    }

    /// Dispatches one request on its owning shard. When every candidate is
    /// local the owner's dispatcher runs directly over its own fleet slice
    /// (the common, zero-copy case a good partition maximises); otherwise
    /// remote candidates are borrowed through the broker, evaluated, and
    /// the winner's committed schedule shipped home.
    fn dispatch_on(
        &mut self,
        owner: usize,
        request: &TripRequest,
        candidates: &[u32],
    ) -> AssignmentOutcome {
        let all_local = candidates
            .iter()
            .all(|&vid| self.owner_of[vid as usize] as usize == owner);
        if all_local {
            self.net.local_requests += 1;
            let shard = &mut self.shards[owner];
            return shard.dispatcher.assign(
                request,
                &mut shard.vehicles,
                self.graph,
                &mut self.index,
                self.oracle,
            );
        }
        self.net.boundary_requests += 1;
        // Borrow remote candidates through the broker.
        for &vid in candidates {
            let s = self.owner_of[vid as usize] as usize;
            if s == owner {
                continue;
            }
            let pos = self.shards[s].pos_of(vid).expect("owner table consistent");
            let copy = self.shards[s].vehicles[pos].clone();
            self.broker.send(
                owner as u16,
                self.tick,
                s as u16,
                ShardMessage::Borrow {
                    vehicle: Box::new(copy),
                },
            );
        }
        let mut eval: Vec<Vehicle> = candidates
            .iter()
            .filter(|&&vid| self.owner_of[vid as usize] as usize == owner)
            .map(|&vid| {
                let pos = self.shards[owner].pos_of(vid).expect("owner consistent");
                self.shards[owner].vehicles[pos].clone()
            })
            .collect();
        for env in self.broker.drain(owner as u16) {
            let ShardMessage::Borrow { vehicle } = env.msg else {
                panic!("only borrows are pending at a dispatch point");
            };
            self.net.borrows += 1;
            eval.push(*vehicle);
        }
        eval.sort_by_key(|v| v.id());
        let shard = &mut self.shards[owner];
        let outcome =
            shard
                .dispatcher
                .assign(request, &mut eval, self.graph, &mut self.index, self.oracle);
        if let AssignmentOutcome::Assigned { vehicle: vid, .. } = outcome {
            let pos = eval
                .iter()
                .position(|v| v.id() == vid)
                .expect("winner came from the eval set");
            let updated = eval.swap_remove(pos);
            let home = self.owner_of[vid as usize] as usize;
            if home == owner {
                let pos = self.shards[home].pos_of(vid).expect("owner consistent");
                self.shards[home].vehicles[pos] = updated;
            } else {
                // Cross-region trip: ship the committed schedule home.
                self.broker.send(
                    home as u16,
                    self.tick,
                    owner as u16,
                    ShardMessage::Commit {
                        vehicle: Box::new(updated),
                    },
                );
                for env in self.broker.drain(home as u16) {
                    let ShardMessage::Commit { vehicle } = env.msg else {
                        panic!("only commits are pending at a commit point");
                    };
                    self.net.cross_commits += 1;
                    let pos = self.shards[home]
                        .pos_of(vehicle.id())
                        .expect("owner consistent");
                    self.shards[home].vehicles[pos] = *vehicle;
                }
            }
        }
        outcome
    }

    /// Reconciles the winning vehicle's motion with its new schedule, in
    /// its owning shard.
    fn replan(&mut self, vid: u32) {
        let s = self.owner_of[vid as usize] as usize;
        let pos = self.shards[s].pos_of(vid).expect("owner consistent");
        replan_after_assignment(&mut self.shards[s].motions[pos], self.clock_m);
    }

    /// Runs the fleet until every committed stop has been served (same
    /// four-hour horizon and stepping as the single-shard drain).
    pub fn drain(&mut self) {
        let horizon = self.clock_m + self.config.seconds_to_meters(4.0 * 3_600.0);
        let step = self.config.seconds_to_meters(300.0);
        while self.clock_m < horizon {
            let busy = self
                .shards
                .iter()
                .any(|s| s.vehicles.iter().any(|v| v.next_stop().is_some()));
            if !busy {
                break;
            }
            let next = (self.clock_m + step).min(horizon);
            self.advance_all(next);
        }
    }

    /// Builds the final report — same formula as the single-shard
    /// [`Simulation::report`](crate::Simulation::report), over the merged
    /// shard statistics.
    pub fn report(&self) -> SimReport {
        let d = self.dispatch_stats();
        let occ = self.collector.occupancy(self.config.vehicles);
        let completed = self.collector.completed;
        SimReport {
            requests: d.requests,
            assigned: d.assigned,
            rejected: d.rejected,
            acrt_ms: d.acrt_ms(),
            art_table: d.art_table(),
            mean_wait_seconds: self.collector.mean_wait_seconds(),
            mean_detour_ratio: self.collector.mean_detour_ratio(),
            guarantee_violations: self.collector.guarantee_violations,
            completed,
            occupancy: occ,
            fleet_distance_km: self.collector.fleet_distance_m / 1_000.0,
            distance_per_delivery_km: if completed == 0 {
                0.0
            } else {
                self.collector.fleet_distance_m / 1_000.0 / completed as f64
            },
            mean_candidates: d.mean_candidates(),
            mean_candidates_evaluated: d.mean_evaluated(),
            span_seconds: self.clock_seconds(),
        }
    }

    /// Access for the checkpoint layer: fleet and motions assembled in
    /// ascending vehicle-id order.
    pub(crate) fn ordered_state(&self) -> (Vec<&Vehicle>, Vec<&Motion>) {
        let mut pairs: Vec<(&Vehicle, &Motion)> = self
            .shards
            .iter()
            .flat_map(|s| s.vehicles.iter().zip(&s.motions))
            .collect();
        pairs.sort_by_key(|(v, _)| v.id());
        pairs.into_iter().unzip()
    }

    /// Checkpoint restore: replaces the whole fleet state, re-scattering
    /// vehicles to shards by their restored position. Used by the resume
    /// path; also how a checkpoint taken under a *different* partition
    /// (or by the single-shard engine) adapts — ownership is derived
    /// state, not part of the snapshot.
    pub(crate) fn adopt_fleet(&mut self, vehicles: Vec<Vehicle>, motions: Vec<Motion>) {
        for s in &mut self.shards {
            s.vehicles.clear();
            s.motions.clear();
        }
        let mut index = GridIndex::new(self.config.grid_cell_meters.max(1.0));
        for (v, m) in vehicles.into_iter().zip(motions) {
            let p = self.graph.point(m.at);
            index.insert(v.id(), Position::new(p.x, p.y));
            let region = self.partition.region_of(m.at);
            self.owner_of[v.id() as usize] = region;
            self.shards[region as usize].vehicles.push(v);
            self.shards[region as usize].motions.push(m);
        }
        self.index = index;
    }

    pub(crate) fn set_clock_m(&mut self, clock_m: f64) {
        self.clock_m = clock_m;
    }

    pub(crate) fn clock_m(&self) -> f64 {
        self.clock_m
    }

    pub(crate) fn graph(&self) -> &'a RoadNetwork {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinetic_core::{KineticConfig, PlannerKind};
    use rideshare_workload::{CityConfig, DemandConfig, Workload};
    use roadnet::CachedOracle;

    fn small_workload(trips: usize, seed: u64) -> Workload {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 2.0 * 3_600.0,
                ..DemandConfig::default()
            },
            seed,
        )
    }

    fn observables(report: &SimReport) -> Vec<u64> {
        vec![
            report.requests,
            report.assigned,
            report.rejected,
            report.completed,
            report.guarantee_violations,
            report.mean_wait_seconds.to_bits(),
            report.mean_detour_ratio.to_bits(),
            report.fleet_distance_km.to_bits(),
            report.distance_per_delivery_km.to_bits(),
            report.mean_candidates.to_bits(),
            report.span_seconds.to_bits(),
            report.occupancy.fleet_max as u64,
            report.occupancy.mean_of_max.to_bits(),
        ]
    }

    #[test]
    fn sharded_run_matches_single_shard_bit_for_bit() {
        let w = small_workload(60, 21);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 14,
            seed: 5,
            cruise_when_idle: true,
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            ..SimConfig::default()
        };
        let mut single = crate::Simulation::new(&w.network, &oracle, config);
        let expect = single.run(&w.trips);
        let expect_trace: Vec<RequestTrace> = single.trace().iter().copied().collect();
        let expect_locs: Vec<u32> = single.vehicles().iter().map(|v| v.location()).collect();

        for k in [1usize, 2, 4, 8] {
            let partition = PartitionSpec::grow(&w.network, k);
            let mut sharded = ShardedSimulation::new(&w.network, &oracle, partition, config);
            sharded.set_verify_invariants(true);
            let got = sharded.run(&w.trips);
            assert_eq!(observables(&got), observables(&expect), "k = {k}");
            let trace: Vec<RequestTrace> = sharded.trace().iter().copied().collect();
            assert_eq!(trace, expect_trace, "k = {k}");
            let locs: Vec<u32> = sharded.vehicles().iter().map(|v| v.location()).collect();
            assert_eq!(locs, expect_locs, "k = {k}");
        }
    }

    #[test]
    fn broker_machinery_is_actually_exercised() {
        // Cruising moves vehicles across regions; a multi-region partition
        // on a small city must produce migrations, and dispatch must see
        // at least one boundary request.
        let w = small_workload(80, 3);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 16,
            seed: 11,
            cruise_when_idle: true,
            ..SimConfig::default()
        };
        let partition = PartitionSpec::grow(&w.network, 4);
        let mut sharded = ShardedSimulation::new(&w.network, &oracle, partition, config);
        sharded.set_verify_invariants(true);
        sharded.run(&w.trips);
        let net = sharded.net_stats();
        assert!(
            net.migrations > 0,
            "no vehicle ever changed shards: {net:?}"
        );
        assert!(
            net.boundary_requests > 0,
            "no request ever spanned shards: {net:?}"
        );
        assert!(net.borrows > 0, "boundary requests must borrow: {net:?}");
        assert_eq!(
            net.local_requests + net.boundary_requests,
            sharded.dispatch_stats().requests
        );
    }

    #[test]
    fn batched_windows_match_single_shard() {
        let w = small_workload(60, 13);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 12,
            seed: 21,
            batch_window_seconds: 120.0,
            ..SimConfig::default()
        };
        let mut single = crate::Simulation::new(&w.network, &oracle, config);
        let expect = single.run(&w.trips);
        let expect_trace: Vec<RequestTrace> = single.trace().iter().copied().collect();
        for k in [2usize, 4] {
            let partition = PartitionSpec::grow(&w.network, k);
            let mut sharded = ShardedSimulation::new(&w.network, &oracle, partition, config);
            sharded.set_verify_invariants(true);
            let got = sharded.run(&w.trips);
            assert_eq!(observables(&got), observables(&expect), "k = {k}");
            let trace: Vec<RequestTrace> = sharded.trace().iter().copied().collect();
            assert_eq!(trace, expect_trace, "k = {k}");
        }
    }

    #[test]
    fn broker_orders_envelopes_by_tick_shard_seq() {
        let mut broker = ShardBroker::new(2);
        let v = Vehicle::new(0, 0, 4, PlannerKind::Kinetic(KineticConfig::basic()), 0.0);
        let mk = || ShardMessage::Borrow {
            vehicle: Box::new(v.clone()),
        };
        broker.send(0, 7, 1, mk());
        broker.send(0, 3, 1, mk());
        broker.send(0, 3, 0, mk());
        broker.send(1, 1, 0, mk());
        let order: Vec<(u64, u16, u64)> = broker
            .drain(0)
            .iter()
            .map(|e| (e.tick, e.from, e.seq))
            .collect();
        assert_eq!(order, vec![(3, 0, 2), (3, 1, 1), (7, 1, 0)]);
        assert_eq!(broker.pending(), 1, "shard 1's queue is untouched");
        assert_eq!(broker.drain(1).len(), 1);
        assert_eq!(broker.pending(), 0);
    }
}

//! Per-request lifecycle tracing and CSV export.
//!
//! The aggregate [`crate::SimReport`] answers "how did the system do?";
//! operators and researchers also want the per-request story — when was each
//! request submitted, which vehicle took it, how long did the rider wait,
//! how much detour did they experience. [`TraceLog`] collects those events
//! and serialises them to a simple CSV that spreadsheet tools and plotting
//! scripts ingest directly.

use std::fmt::Write as _;

use kinetic_core::TripId;

/// Lifecycle of one trip request as observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTrace {
    /// Request id.
    pub trip: TripId,
    /// Submission time, seconds from simulation start.
    pub submitted_s: f64,
    /// Vehicle the request was assigned to, if any.
    pub vehicle: Option<u32>,
    /// Cost (meters) of the winning augmented schedule at assignment time.
    pub assignment_cost_m: Option<f64>,
    /// Number of candidate vehicles examined.
    pub candidates: usize,
    /// Pickup time, seconds from simulation start.
    pub picked_up_s: Option<f64>,
    /// Delivery time, seconds from simulation start.
    pub delivered_s: Option<f64>,
    /// Direct shortest-path distance of the trip, meters.
    pub direct_m: f64,
    /// Realised on-vehicle distance, meters (delivery only).
    pub ride_m: Option<f64>,
}

impl RequestTrace {
    /// Creates a trace entry for a newly submitted request.
    pub fn submitted(trip: TripId, submitted_s: f64, direct_m: f64, candidates: usize) -> Self {
        RequestTrace {
            trip,
            submitted_s,
            vehicle: None,
            assignment_cost_m: None,
            candidates,
            picked_up_s: None,
            delivered_s: None,
            direct_m,
            ride_m: None,
        }
    }

    /// Realised waiting time in seconds, when picked up.
    pub fn waited_s(&self) -> Option<f64> {
        self.picked_up_s.map(|p| p - self.submitted_s)
    }

    /// Realised detour ratio (ride / direct), when delivered.
    pub fn detour_ratio(&self) -> Option<f64> {
        match (self.ride_m, self.direct_m) {
            (Some(ride), direct) if direct > 0.0 => Some(ride / direct),
            _ => None,
        }
    }

    /// True when the request was assigned to a vehicle.
    pub fn was_assigned(&self) -> bool {
        self.vehicle.is_some()
    }

    /// True when the rider was delivered before the simulation ended.
    pub fn was_delivered(&self) -> bool {
        self.delivered_s.is_some()
    }
}

/// Collected per-request traces of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<RequestTrace>,
    /// Trip id -> position in `entries`, so per-event updates stay O(1) even
    /// for day-long workloads with hundreds of thousands of requests.
    index: std::collections::HashMap<TripId, usize>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Adds a submission entry and returns its index.
    pub fn push(&mut self, trace: RequestTrace) -> usize {
        let slot = self.entries.len();
        self.index.insert(trace.trip, slot);
        self.entries.push(trace);
        slot
    }

    /// Looks up the entry for a trip id.
    pub fn get(&self, trip: TripId) -> Option<&RequestTrace> {
        self.index.get(&trip).map(|&i| &self.entries[i])
    }

    fn get_mut(&mut self, trip: TripId) -> Option<&mut RequestTrace> {
        let i = *self.index.get(&trip)?;
        self.entries.get_mut(i)
    }

    /// Records an assignment.
    pub fn record_assignment(&mut self, trip: TripId, vehicle: u32, cost_m: f64) {
        if let Some(e) = self.get_mut(trip) {
            e.vehicle = Some(vehicle);
            e.assignment_cost_m = Some(cost_m);
        }
    }

    /// Records a pickup.
    pub fn record_pickup(&mut self, trip: TripId, at_s: f64) {
        if let Some(e) = self.get_mut(trip) {
            e.picked_up_s = Some(at_s);
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, trip: TripId, at_s: f64, ride_m: f64) {
        if let Some(e) = self.get_mut(trip) {
            e.delivered_s = Some(at_s);
            e.ride_m = Some(ride_m);
        }
    }

    /// Number of traced requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the traces in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &RequestTrace> {
        self.entries.iter()
    }

    /// Serialises the log as CSV (header + one row per request).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "trip,submitted_s,vehicle,assignment_cost_m,candidates,picked_up_s,waited_s,delivered_s,direct_m,ride_m,detour_ratio\n",
        );
        for e in &self.entries {
            let opt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{:.3},{},{},{},{},{},{},{:.3},{},{}",
                e.trip,
                e.submitted_s,
                e.vehicle.map(|v| v.to_string()).unwrap_or_default(),
                opt(e.assignment_cost_m),
                e.candidates,
                opt(e.picked_up_s),
                opt(e.waited_s()),
                opt(e.delivered_s),
                e.direct_m,
                opt(e.ride_m),
                opt(e.detour_ratio()),
            );
        }
        out
    }

    /// Writes the CSV to a file.
    pub fn write_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(RequestTrace::submitted(1, 10.0, 2_000.0, 5));
        log.push(RequestTrace::submitted(2, 20.0, 1_500.0, 3));
        log.record_assignment(1, 7, 3_200.0);
        log.record_pickup(1, 110.0);
        log.record_delivery(1, 300.0, 2_400.0);
        log
    }

    #[test]
    fn lifecycle_accessors() {
        let log = sample_log();
        let t1 = log.get(1).unwrap();
        assert!(t1.was_assigned());
        assert!(t1.was_delivered());
        assert_eq!(t1.waited_s(), Some(100.0));
        assert!((t1.detour_ratio().unwrap() - 1.2).abs() < 1e-9);
        let t2 = log.get(2).unwrap();
        assert!(!t2.was_assigned());
        assert_eq!(t2.waited_s(), None);
        assert_eq!(t2.detour_ratio(), None);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert!(log.get(99).is_none());
    }

    #[test]
    fn csv_has_header_and_one_row_per_request() {
        let log = sample_log();
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("trip,submitted_s"));
        assert!(lines[1].starts_with("1,10.000,7,3200.000,5,110.000,100.000,300.000"));
        // Unassigned request leaves the optional fields empty.
        assert!(lines[2].starts_with("2,20.000,,,3,,,,"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("rideshare_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        log.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, log.to_csv());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn updates_to_unknown_trips_are_ignored() {
        let mut log = TraceLog::new();
        log.record_assignment(5, 1, 10.0);
        log.record_pickup(5, 1.0);
        log.record_delivery(5, 2.0, 3.0);
        assert!(log.is_empty());
    }
}

//! Discrete-event real-time ridesharing simulator.
//!
//! This crate reproduces the paper's simulation framework (Sec. VI): trip
//! requests are submitted in real time according to their timestamps,
//! vehicles drive along shortest paths at a constant 14 m/s (so distance and
//! time are interchangeable), idle vehicles cruise by picking a random
//! road segment at every intersection, and each incoming request is matched
//! to the candidate vehicle (found through the grid spatial index) that can
//! serve it at minimum augmented trip cost.
//!
//! The simulator measures the paper's two latency metrics — average customer
//! response time (ACRT) and average response time per vehicle evaluation
//! bucketed by the vehicle's current request count (ART) — plus service
//! quality metrics (waiting times, detour ratios, guarantee violations,
//! which must always be zero) and the occupancy statistics quoted in
//! Sec. VI-B.
//!
//! ```
//! use rideshare_sim::{SimConfig, Simulation};
//! use rideshare_workload::{CityConfig, DemandConfig, Workload};
//! use roadnet::CachedOracle;
//!
//! let workload = Workload::generate(
//!     &CityConfig::small(),
//!     &DemandConfig { trips: 30, ..DemandConfig::default() },
//!     1,
//! );
//! let oracle = CachedOracle::without_labels(&workload.network);
//! let config = SimConfig { vehicles: 10, ..SimConfig::default() };
//! let mut sim = Simulation::new(&workload.network, &oracle, config);
//! let report = sim.run(&workload.trips);
//! assert_eq!(report.requests, 30);
//! assert_eq!(report.guarantee_violations, 0);
//! ```

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod shard;
pub mod trace;

pub use checkpoint::{digest_config, digest_trips};
pub use config::SimConfig;
pub use engine::Simulation;
pub use metrics::{OccupancyStats, SimReport};
pub use shard::{Envelope, ShardBroker, ShardMessage, ShardNetStats, ShardedSimulation};
pub use trace::{RequestTrace, TraceLog};

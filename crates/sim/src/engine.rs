//! The simulation engine: vehicle movement, request submission, dispatching.

use std::collections::{BTreeMap, VecDeque};

use kinetic_core::{
    AssignmentOutcome, Dispatcher, ParallelDispatcher, StopKind, TripId, TripRequest, Vehicle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rideshare_workload::TripEvent;
use roadnet::{DistanceOracle, NodeId, RoadNetwork};
use spatial::{GridIndex, Position};
use workpool::WorkPool;

use crate::config::SimConfig;
use crate::metrics::{MetricsCollector, SimReport};
use crate::trace::{RequestTrace, TraceLog};

/// Motion state of one vehicle: the remaining nodes of its current drive
/// (each with the leg length from the previous node) and the clock at which
/// the first of them is reached. Opaque outside the crate; it appears in
/// the public API only as the payload of a shard migration message.
#[derive(Debug, Clone)]
pub struct Motion {
    /// Nodes still to traverse; front is reached at `next_arrival_m`.
    pub(crate) path: VecDeque<(NodeId, f64)>,
    /// Absolute clock (meter-equivalents) at which `path[0]` is reached.
    pub(crate) next_arrival_m: f64,
    /// Last road vertex actually reached.
    pub(crate) at: NodeId,
    /// Clock at which `at` was reached.
    pub(crate) at_clock_m: f64,
    /// Private RNG driving this vehicle's cruising decisions. Per-vehicle
    /// streams (rather than one engine-wide RNG) are what make fleet
    /// movement independent across vehicles, so the parallel advance can
    /// be bit-identical to the sequential one at any worker count.
    pub(crate) rng: StdRng,
}

impl Motion {
    pub(crate) fn parked_at(at: NodeId, rng: StdRng) -> Self {
        Motion {
            path: VecDeque::new(),
            next_arrival_m: 0.0,
            at,
            at_clock_m: 0.0,
            rng,
        }
    }
}

/// A committed stop served while advancing one vehicle, buffered during the
/// (possibly parallel) movement phase and applied to the metrics, records
/// and trace sequentially in vehicle order afterwards.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServedStop {
    pub(crate) trip: TripId,
    pub(crate) kind: StopKind,
    pub(crate) clock_m: f64,
    /// Riders on board after a pickup (unused for dropoffs).
    pub(crate) onboard_after: usize,
}

/// Everything one vehicle's advance produced besides its own mutated state.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdvanceOutcome {
    /// Road distance driven within the window.
    pub(crate) distance_m: f64,
    /// Last vertex reached, when the vehicle moved (drives the spatial
    /// index update; intermediate positions are unobservable between
    /// `advance_all` calls).
    pub(crate) moved_to: Option<NodeId>,
    /// Stops served, in service order.
    pub(crate) stops: Vec<ServedStop>,
}

/// Bookkeeping for every submitted request, used for service-quality
/// metrics and guarantee checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TripRecord {
    pub(crate) submitted_m: f64,
    pub(crate) direct_m: f64,
    pub(crate) max_wait_m: f64,
    pub(crate) max_ride_m: f64,
    pub(crate) picked_up_m: Option<f64>,
}

/// The engine's matcher: sequential, or fanning candidate evaluations out
/// across worker threads. Both produce bit-identical assignments; the
/// parallel arm needs a `Sync` oracle (e.g. `roadnet::ShardedOracle`).
pub(crate) enum FleetDispatcher {
    Sequential(Dispatcher),
    Parallel(ParallelDispatcher),
}

impl FleetDispatcher {
    pub(crate) fn stats(&self) -> &kinetic_core::DispatchStats {
        match self {
            FleetDispatcher::Sequential(d) => d.stats(),
            FleetDispatcher::Parallel(d) => d.stats(),
        }
    }

    /// Restores previously accumulated statistics (checkpoint resume).
    pub(crate) fn set_stats(&mut self, stats: kinetic_core::DispatchStats) {
        match self {
            FleetDispatcher::Sequential(d) => d.set_stats(stats),
            FleetDispatcher::Parallel(d) => d.set_stats(stats),
        }
    }

    pub(crate) fn effort(&self) -> kinetic_core::DispatchEffort {
        match self {
            FleetDispatcher::Sequential(d) => d.effort(),
            FleetDispatcher::Parallel(d) => d.effort(),
        }
    }

    pub(crate) fn set_effort(&mut self, effort: kinetic_core::DispatchEffort) {
        match self {
            FleetDispatcher::Sequential(d) => d.set_effort(effort),
            FleetDispatcher::Parallel(d) => d.set_effort(effort),
        }
    }

    fn candidates(
        &self,
        request: &TripRequest,
        graph: &RoadNetwork,
        index: &mut GridIndex,
        fleet_size: usize,
    ) -> Vec<u32> {
        match self {
            FleetDispatcher::Sequential(d) => d.candidates(request, graph, index, fleet_size),
            FleetDispatcher::Parallel(d) => d.candidates(request, graph, index, fleet_size),
        }
    }

    /// Dispatches one request. The sequential arm uses `oracle`; the
    /// parallel arm needs the `Sync` oracle, which its constructor
    /// guarantees is present.
    fn assign(
        &mut self,
        request: &TripRequest,
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
        par_oracle: Option<&(dyn DistanceOracle + Sync)>,
    ) -> AssignmentOutcome {
        match self {
            FleetDispatcher::Sequential(d) => d.assign(request, vehicles, graph, index, oracle),
            FleetDispatcher::Parallel(d) => d.assign(
                request,
                vehicles,
                graph,
                index,
                par_oracle.expect("parallel dispatcher always has a Sync oracle"),
            ),
        }
    }

    /// Dispatches a batch of same-tick requests in slice order. The
    /// parallel arm amortizes candidate evaluation across the whole batch;
    /// the sequential arm feeds the requests through
    /// [`Dispatcher::assign`](kinetic_core::Dispatcher) one by one. Both
    /// produce identical outcome sequences.
    fn assign_batch(
        &mut self,
        requests: &[TripRequest],
        vehicles: &mut [Vehicle],
        graph: &RoadNetwork,
        index: &mut GridIndex,
        oracle: &dyn DistanceOracle,
        par_oracle: Option<&(dyn DistanceOracle + Sync)>,
    ) -> Vec<AssignmentOutcome> {
        match self {
            FleetDispatcher::Sequential(d) => requests
                .iter()
                .map(|r| d.assign(r, vehicles, graph, index, oracle))
                .collect(),
            FleetDispatcher::Parallel(d) => d.assign_batch(
                requests,
                vehicles,
                graph,
                index,
                par_oracle.expect("parallel dispatcher always has a Sync oracle"),
            ),
        }
    }
}

/// A single simulation run over a road network.
pub struct Simulation<'a> {
    pub(crate) graph: &'a RoadNetwork,
    pub(crate) oracle: &'a dyn DistanceOracle,
    /// `Some` when constructed through [`Simulation::with_parallel`]; the
    /// parallel dispatcher requires the oracle to be `Sync`.
    pub(crate) par_oracle: Option<&'a (dyn DistanceOracle + Sync)>,
    pub(crate) config: SimConfig,
    pub(crate) vehicles: Vec<Vehicle>,
    pub(crate) motions: Vec<Motion>,
    pub(crate) index: GridIndex,
    pub(crate) dispatcher: FleetDispatcher,
    /// Fans vehicle movement out across threads when constructed through
    /// [`Simulation::with_parallel`] with more than one worker.
    pub(crate) pool: WorkPool,
    pub(crate) clock_m: f64,
    pub(crate) collector: MetricsCollector,
    pub(crate) records: BTreeMap<TripId, TripRecord>,
    pub(crate) trace: TraceLog,
}

impl<'a> Simulation<'a> {
    /// Creates a sequential simulation: vehicles are placed on uniformly
    /// random vertices (as in the paper) and registered in the spatial
    /// index. Candidate evaluation runs inline on the calling thread; use
    /// [`Simulation::with_parallel`] (which needs a `Sync` oracle) to fan
    /// evaluations out across threads.
    ///
    /// # Panics
    /// Panics when [`SimConfig::workers`] is greater than 1 — the knob
    /// would be silently inert through this entry point.
    pub fn new(graph: &'a RoadNetwork, oracle: &'a dyn DistanceOracle, config: SimConfig) -> Self {
        Self::build(graph, oracle, None, config)
    }

    /// Creates a simulation whose dispatcher fans candidate evaluations out
    /// across [`SimConfig::workers`] threads. Requires a thread-safe oracle
    /// (e.g. `roadnet::ShardedOracle`); assignments and every report
    /// counter are bit-identical to the sequential engine.
    pub fn with_parallel(
        graph: &'a RoadNetwork,
        oracle: &'a (dyn DistanceOracle + Sync),
        config: SimConfig,
    ) -> Self {
        Self::build(graph, oracle, Some(oracle), config)
    }

    pub(crate) fn build(
        graph: &'a RoadNetwork,
        oracle: &'a dyn DistanceOracle,
        par_oracle: Option<&'a (dyn DistanceOracle + Sync)>,
        config: SimConfig,
    ) -> Self {
        // Catch the misconfiguration where `workers > 1` is set but the
        // sequential entry point was used: the knob would be silently inert
        // (this must fire in release builds too — that is exactly where
        // mis-measured "parallel" runs would otherwise go unnoticed).
        assert!(
            par_oracle.is_some() || config.workers <= 1,
            "SimConfig::workers = {} has no effect through Simulation::new; \
             use Simulation::with_parallel with a Sync oracle",
            config.workers
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut vehicles = Vec::with_capacity(config.vehicles);
        let mut motions = Vec::with_capacity(config.vehicles);
        let mut index = GridIndex::new(config.grid_cell_meters.max(1.0));
        let n = graph.node_count() as u64;
        for id in 0..config.vehicles as u32 {
            let start = (rng.gen::<u64>() % n) as NodeId;
            let v = Vehicle::new(id, start, config.capacity, config.planner, 0.0);
            let p = graph.point(start);
            index.insert(id, Position::new(p.x, p.y));
            vehicles.push(v);
            // Each vehicle owns a cruising RNG stream derived from the run
            // seed and its id, independent of every other vehicle's.
            let stream = config
                .seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            motions.push(Motion::parked_at(start, StdRng::seed_from_u64(stream)));
        }
        let dispatcher = match par_oracle {
            Some(_) => FleetDispatcher::Parallel(ParallelDispatcher::new(
                config.dispatcher,
                config.workers,
            )),
            None => FleetDispatcher::Sequential(Dispatcher::new(config.dispatcher)),
        };
        // Movement fan-out reuses the dispatcher's inline threshold: both
        // knobs gate "is this batch big enough to be worth spawning for".
        let pool =
            WorkPool::new(config.workers).run_inline_below(config.dispatcher.min_parallel_items);
        Simulation {
            graph,
            oracle,
            par_oracle,
            config,
            vehicles,
            motions,
            index,
            dispatcher,
            pool,
            clock_m: 0.0,
            collector: MetricsCollector::default(),
            records: BTreeMap::new(),
            trace: TraceLog::new(),
        }
    }

    /// Per-request lifecycle traces collected so far (submission,
    /// assignment, pickup, delivery); export with [`TraceLog::to_csv`].
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The configuration this simulation runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Access to the fleet (e.g. for inspecting kinetic trees in tests).
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Runs the full workload and returns the report. Requests are submitted
    /// at their timestamps; after the last request the simulation keeps
    /// running until every committed stop has been served (bounded by a
    /// four-hour drain horizon).
    pub fn run(&mut self, trips: &[TripEvent]) -> SimReport {
        let limit = self.config.max_requests.unwrap_or(usize::MAX);
        let trips = &trips[..trips.len().min(limit)];
        let window = self.config.batch_window_seconds;
        if window <= 0.0 {
            for trip in trips {
                let t_m = self.config.seconds_to_meters(trip.time_seconds);
                self.advance_all(t_m);
                self.submit(trip);
            }
        } else {
            // Group consecutive trips landing in the same dispatch window.
            // Trips are sorted by time, so each window is one contiguous
            // slice; the fleet advances once to the window's last request.
            let mut start = 0;
            while start < trips.len() {
                let bucket = (trips[start].time_seconds / window).floor();
                let mut end = start + 1;
                while end < trips.len() && (trips[end].time_seconds / window).floor() == bucket {
                    end += 1;
                }
                let batch = &trips[start..end];
                let t_m = self
                    .config
                    .seconds_to_meters(batch[batch.len() - 1].time_seconds);
                self.advance_all(t_m);
                self.submit_batch(batch);
                start = end;
            }
        }
        self.drain();
        self.report()
    }

    /// Submits a single request at the current simulation clock. Exposed so
    /// integration tests and custom harnesses can drive the simulation
    /// step by step.
    ///
    /// ```
    /// use rideshare_sim::{SimConfig, Simulation};
    /// use rideshare_workload::{CityConfig, DemandConfig, Workload};
    /// use roadnet::CachedOracle;
    ///
    /// let w = Workload::generate(&CityConfig::small(), &DemandConfig::default(), 1);
    /// let oracle = CachedOracle::without_labels(&w.network);
    /// let config = SimConfig { vehicles: 10, ..SimConfig::default() };
    /// let mut sim = Simulation::new(&w.network, &oracle, config);
    /// // Advance the fleet to the request's timestamp, then dispatch it.
    /// let trip = &w.trips[0];
    /// sim.advance_all(sim.config().seconds_to_meters(trip.time_seconds));
    /// let outcome = sim.submit(trip);
    /// assert!(outcome.is_assigned(), "an idle fleet must accept the first request");
    /// assert_eq!(sim.dispatch_stats().requests, 1);
    /// ```
    pub fn submit(&mut self, trip: &TripEvent) -> AssignmentOutcome {
        let request = TripRequest::new(
            trip.id,
            trip.source,
            trip.destination,
            self.clock_m,
            self.config.constraints,
        );
        let direct = self.oracle.dist(trip.source, trip.destination);
        self.records.insert(
            trip.id,
            TripRecord {
                submitted_m: self.clock_m,
                direct_m: direct,
                max_wait_m: self.config.constraints.max_wait,
                max_ride_m: self.config.constraints.max_ride(direct),
                picked_up_m: None,
            },
        );
        // Sync candidate vehicles to their effective positions (the next
        // vertex they will reach) before evaluation.
        let candidates =
            self.dispatcher
                .candidates(&request, self.graph, &mut self.index, self.vehicles.len());
        for &vid in &candidates {
            let i = vid as usize;
            let (node, clock) = self.effective_position(i);
            self.vehicles[i].set_position(node, clock, self.oracle);
        }
        let outcome = self.dispatcher.assign(
            &request,
            &mut self.vehicles,
            self.graph,
            &mut self.index,
            self.oracle,
            self.par_oracle,
        );
        self.trace.push(RequestTrace::submitted(
            trip.id,
            self.config.meters_to_seconds(self.clock_m),
            direct,
            candidates.len(),
        ));
        if let AssignmentOutcome::Assigned { vehicle, cost, .. } = outcome {
            self.trace.record_assignment(trip.id, vehicle, cost);
            self.replan_after_assignment(vehicle as usize);
        }
        outcome
    }

    /// Submits one dispatch window's worth of requests through a single
    /// batched dispatcher call. Requests are dispatched in slice order
    /// (ascending submission time) and each keeps its **own** submission
    /// time for deadlines, records and the trace — only vehicle movement is
    /// quantized to the window (the caller advances the fleet to the
    /// window's last request before submitting, see [`Simulation::run`]).
    /// Candidate-vehicle positions are synced once over the union of the
    /// batch's candidate sets, which is what amortizes the per-request
    /// setup cost.
    pub fn submit_batch(&mut self, trips: &[TripEvent]) -> Vec<AssignmentOutcome> {
        if trips.is_empty() {
            return Vec::new();
        }
        let mut requests = Vec::with_capacity(trips.len());
        let mut directs = Vec::with_capacity(trips.len());
        let mut candidate_counts = Vec::with_capacity(trips.len());
        let mut to_sync: Vec<u32> = Vec::new();
        for trip in trips {
            let t_m = self.config.seconds_to_meters(trip.time_seconds);
            let request = TripRequest::new(
                trip.id,
                trip.source,
                trip.destination,
                t_m,
                self.config.constraints,
            );
            let direct = self.oracle.dist(trip.source, trip.destination);
            self.records.insert(
                trip.id,
                TripRecord {
                    submitted_m: t_m,
                    direct_m: direct,
                    max_wait_m: self.config.constraints.max_wait,
                    max_ride_m: self.config.constraints.max_ride(direct),
                    picked_up_m: None,
                },
            );
            let candidates = self.dispatcher.candidates(
                &request,
                self.graph,
                &mut self.index,
                self.vehicles.len(),
            );
            candidate_counts.push(candidates.len());
            to_sync.extend(candidates);
            requests.push(request);
            directs.push(direct);
        }
        // Sync each candidate vehicle once, even when it appears in several
        // requests' candidate sets (`set_position` is idempotent at a fixed
        // clock, and dispatch commits never move a vehicle).
        to_sync.sort_unstable();
        to_sync.dedup();
        for vid in to_sync {
            let i = vid as usize;
            let (node, clock) = self.effective_position(i);
            self.vehicles[i].set_position(node, clock, self.oracle);
        }
        let outcomes = self.dispatcher.assign_batch(
            &requests,
            &mut self.vehicles,
            self.graph,
            &mut self.index,
            self.oracle,
            self.par_oracle,
        );
        for (((trip, outcome), direct), n_candidates) in trips
            .iter()
            .zip(&outcomes)
            .zip(&directs)
            .zip(&candidate_counts)
        {
            self.trace.push(RequestTrace::submitted(
                trip.id,
                trip.time_seconds,
                *direct,
                *n_candidates,
            ));
            if let AssignmentOutcome::Assigned { vehicle, cost, .. } = *outcome {
                self.trace.record_assignment(trip.id, vehicle, cost);
                self.replan_after_assignment(vehicle as usize);
            }
        }
        outcomes
    }

    /// Advances the whole fleet to absolute clock `until_m`.
    ///
    /// Vehicle movement is independent across vehicles (each owns its
    /// motion state and cruising RNG stream), so the movement phase fans
    /// out over the work pool when the simulation was built with
    /// [`Simulation::with_parallel`] and more than one worker. Everything
    /// observable — metrics, records, the trace, the spatial index — is
    /// applied sequentially in vehicle-id order afterwards, which makes
    /// the result bit-identical to the sequential engine at any worker
    /// count (see `parallel_advance_matches_sequential`).
    pub fn advance_all(&mut self, until_m: f64) {
        let until_m = until_m.max(self.clock_m);
        let graph = self.graph;
        let cruise = self.config.cruise_when_idle;
        let outcomes: Vec<AdvanceOutcome> = match (self.par_oracle, self.config.workers > 1) {
            (Some(oracle), true) => self
                .pool
                .zip_chunks_mut(
                    &mut self.vehicles,
                    &mut self.motions,
                    |_chunk, _range, vehicles, motions| {
                        vehicles
                            .iter_mut()
                            .zip(motions.iter_mut())
                            .map(|(v, m)| advance_one(v, m, graph, oracle, cruise, until_m))
                            .collect::<Vec<_>>()
                    },
                )
                .into_iter()
                .flatten()
                .collect(),
            _ => {
                let oracle = self.oracle;
                self.vehicles
                    .iter_mut()
                    .zip(self.motions.iter_mut())
                    .map(|(v, m)| advance_one(v, m, graph, oracle, cruise, until_m))
                    .collect()
            }
        };
        for (i, outcome) in outcomes.iter().enumerate() {
            self.apply_outcome(i as u32, outcome);
        }
        self.clock_m = until_m;
    }

    /// Applies one vehicle's buffered movement effects: spatial index,
    /// fleet distance, and every served stop in order.
    fn apply_outcome(&mut self, vehicle_id: u32, outcome: &AdvanceOutcome) {
        apply_outcome_to(
            self.graph,
            &self.config,
            &mut self.index,
            &mut self.collector,
            &mut self.records,
            &mut self.trace,
            vehicle_id,
            outcome,
        );
    }

    /// Current simulated clock, in seconds.
    pub fn clock_seconds(&self) -> f64 {
        self.config.meters_to_seconds(self.clock_m)
    }

    /// The dispatcher statistics accumulated so far (requests, assignments,
    /// rejections, ACRT/ART bookkeeping). Harnesses that stream per-window
    /// metrics diff successive snapshots of these counters.
    pub fn dispatch_stats(&self) -> &kinetic_core::DispatchStats {
        self.dispatcher.stats()
    }

    /// Current planner effort level (the serve path's degradation ladder).
    pub fn dispatch_effort(&self) -> kinetic_core::DispatchEffort {
        self.dispatcher.effort()
    }

    /// Sets the planner effort level for subsequent dispatches. The serve
    /// loop steps this down under overload (full → slack-pruned → greedy)
    /// and back up with hysteresis; replay and batch determinism are
    /// preserved at every level (each is a pure function of fleet state).
    /// Not part of the checkpoint image — a resuming serve loop re-applies
    /// its ladder state after restoring from a checkpoint (see the
    /// `checkpoint` module docs).
    pub fn set_dispatch_effort(&mut self, effort: kinetic_core::DispatchEffort) {
        self.dispatcher.set_effort(effort);
    }

    /// Realised waiting times (seconds) of every pickup served so far, in
    /// service order. Windowed harnesses slice the suffix added since their
    /// last flush to compute per-window latency percentiles.
    pub fn wait_samples(&self) -> &[f64] {
        &self.collector.wait_seconds
    }

    /// Passengers on board immediately after each pickup served so far, in
    /// service order (the occupancy signal of Sec. VI-B).
    pub fn pickup_onboard_samples(&self) -> &[usize] {
        &self.collector.onboard_at_pickup
    }

    /// Simulation clock (seconds) of each pickup, aligned index-for-index
    /// with [`Simulation::wait_samples`] and
    /// [`Simulation::pickup_onboard_samples`].
    pub fn pickup_clock_samples(&self) -> &[f64] {
        &self.collector.pickup_clock_seconds
    }

    fn effective_position(&self, i: usize) -> (NodeId, f64) {
        effective_position(&self.motions[i], self.clock_m)
    }

    fn replan_after_assignment(&mut self, i: usize) {
        replan_after_assignment(&mut self.motions[i], self.clock_m);
    }

    /// Runs the fleet until every committed stop has been served, bounded by
    /// a four-hour horizon beyond the current clock. [`Simulation::run`]
    /// calls this after the last request; harnesses that drive the
    /// simulation step by step (e.g. the checkpointed `paper_replay`
    /// binary) call it explicitly once their trip stream is exhausted.
    pub fn drain(&mut self) {
        let horizon = self.clock_m + self.config.seconds_to_meters(4.0 * 3_600.0);
        let step = self.config.seconds_to_meters(300.0);
        while self.clock_m < horizon {
            let busy = self.vehicles.iter().any(|v| v.next_stop().is_some());
            if !busy {
                break;
            }
            let next = (self.clock_m + step).min(horizon);
            self.advance_all(next);
        }
    }

    /// Builds the final report from the dispatcher statistics and the
    /// collected service-quality metrics.
    pub fn report(&self) -> SimReport {
        let d = self.dispatcher.stats();
        let occ = self.collector.occupancy(self.vehicles.len());
        let completed = self.collector.completed;
        SimReport {
            requests: d.requests,
            assigned: d.assigned,
            rejected: d.rejected,
            acrt_ms: d.acrt_ms(),
            art_table: d.art_table(),
            mean_wait_seconds: self.collector.mean_wait_seconds(),
            mean_detour_ratio: self.collector.mean_detour_ratio(),
            guarantee_violations: self.collector.guarantee_violations,
            completed,
            occupancy: occ,
            fleet_distance_km: self.collector.fleet_distance_m / 1_000.0,
            distance_per_delivery_km: if completed == 0 {
                0.0
            } else {
                self.collector.fleet_distance_m / 1_000.0 / completed as f64
            },
            mean_candidates: d.mean_candidates(),
            mean_candidates_evaluated: d.mean_evaluated(),
            span_seconds: self.clock_seconds(),
        }
    }
}

/// The vertex a vehicle should be evaluated at and the clock it gets
/// there: the next vertex of an in-flight drive, or the parked position.
/// Shared by the single-shard and sharded engines so both sync candidate
/// vehicles identically before dispatch.
pub(crate) fn effective_position(m: &Motion, clock_m: f64) -> (NodeId, f64) {
    match m.path.front() {
        Some(&(node, _)) => (node, m.next_arrival_m),
        None => (m.at, clock_m.max(m.at_clock_m)),
    }
}

/// Reconciles a vehicle's motion state with a freshly committed schedule.
pub(crate) fn replan_after_assignment(motion: &mut Motion, clock_m: f64) {
    if motion.path.is_empty() {
        // Parked: the vehicle departs now (not at the stale time it
        // finished its last stop); the next advance plans its drive.
        motion.at_clock_m = motion.at_clock_m.max(clock_m);
    } else {
        // In flight: finish the current leg, then the arrival handler
        // will route towards the new schedule. Drop any queued legs that
        // belonged to the previous plan.
        let first = motion.path.front().copied();
        motion.path.clear();
        if let Some(leg) = first {
            motion.path.push_back(leg);
        }
    }
}

/// Applies one vehicle's buffered movement effects — spatial index update,
/// fleet distance, served stops — to the observable run state. Both
/// engines call this in ascending vehicle-id order, which fixes the f64
/// accumulation order and keeps the sharded engine bit-identical to the
/// single-shard one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_outcome_to(
    graph: &RoadNetwork,
    config: &SimConfig,
    index: &mut GridIndex,
    collector: &mut MetricsCollector,
    records: &mut BTreeMap<TripId, TripRecord>,
    trace: &mut TraceLog,
    vehicle_id: u32,
    outcome: &AdvanceOutcome,
) {
    if let Some(node) = outcome.moved_to {
        let p = graph.point(node);
        index.update(vehicle_id, Position::new(p.x, p.y));
    }
    collector.fleet_distance_m += outcome.distance_m;
    for stop in &outcome.stops {
        apply_served_stop_to(config, collector, records, trace, vehicle_id, stop);
    }
}

fn apply_served_stop_to(
    config: &SimConfig,
    collector: &mut MetricsCollector,
    records: &mut BTreeMap<TripId, TripRecord>,
    trace: &mut TraceLog,
    vehicle_id: u32,
    stop: &ServedStop,
) {
    match stop.kind {
        StopKind::Pickup => {
            if let Some(rec) = records.get_mut(&stop.trip) {
                rec.picked_up_m = Some(stop.clock_m);
                let waited_m = stop.clock_m - rec.submitted_m;
                if waited_m > rec.max_wait_m + 1e-6 {
                    collector.record_wait_violation();
                }
                let waited_s = config.meters_to_seconds(waited_m);
                collector.record_pickup(
                    vehicle_id,
                    stop.onboard_after,
                    waited_s,
                    config.meters_to_seconds(stop.clock_m),
                );
            }
            trace.record_pickup(stop.trip, config.meters_to_seconds(stop.clock_m));
        }
        StopKind::Dropoff => {
            if let Some(rec) = records.get(&stop.trip) {
                if let Some(picked) = rec.picked_up_m {
                    let ride = stop.clock_m - picked;
                    let ratio = if rec.direct_m > 0.0 {
                        ride / rec.direct_m
                    } else {
                        1.0
                    };
                    let violated = ride > rec.max_ride_m + 1e-6;
                    collector.record_delivery(ratio, violated);
                    trace.record_delivery(stop.trip, config.meters_to_seconds(stop.clock_m), ride);
                }
            }
        }
    }
}

/// Advances one vehicle to `until_m`, mutating only that vehicle's state
/// and buffering every externally visible effect into the returned
/// [`AdvanceOutcome`]. This is the unit of work the parallel movement
/// phase fans out; it must not touch any shared engine state.
pub(crate) fn advance_one(
    vehicle: &mut Vehicle,
    motion: &mut Motion,
    graph: &RoadNetwork,
    oracle: &dyn DistanceOracle,
    cruise_when_idle: bool,
    until_m: f64,
) -> AdvanceOutcome {
    let mut outcome = AdvanceOutcome::default();
    loop {
        if motion.path.is_empty()
            && !start_next_leg(
                vehicle,
                motion,
                graph,
                oracle,
                cruise_when_idle,
                until_m,
                &mut outcome,
            )
        {
            return outcome;
        }
        if motion.next_arrival_m > until_m {
            return outcome;
        }
        let (node, leg) = motion.path.pop_front().expect("leg exists");
        let arrival = motion.next_arrival_m;
        motion.at = node;
        motion.at_clock_m = arrival;
        outcome.distance_m += leg;
        outcome.moved_to = Some(node);
        if let Some(&(_, next_leg)) = motion.path.front() {
            motion.next_arrival_m = arrival + next_leg;
        } else {
            // End of the planned drive: either we reached a committed
            // stop or a cruising hop finished.
            let reached_stop = vehicle.next_stop().is_some_and(|s| s.node == node);
            if reached_stop {
                serve_stop(vehicle, arrival, oracle, &mut outcome);
            } else {
                vehicle.set_position(node, arrival, oracle);
            }
        }
    }
}

/// Plans the next drive for a vehicle whose path is empty. Returns false
/// when the vehicle stays parked (nothing to do and cruising disabled).
#[allow(clippy::too_many_arguments)]
fn start_next_leg(
    vehicle: &mut Vehicle,
    motion: &mut Motion,
    graph: &RoadNetwork,
    oracle: &dyn DistanceOracle,
    cruise_when_idle: bool,
    until_m: f64,
    outcome: &mut AdvanceOutcome,
) -> bool {
    // Serve any stop located at the current vertex immediately.
    while let Some(stop) = vehicle.next_stop() {
        if stop.node == motion.at {
            let clock = motion.at_clock_m;
            serve_stop(vehicle, clock, oracle, outcome);
        } else {
            break;
        }
    }
    if let Some(stop) = vehicle.next_stop() {
        return plan_path_to(motion, stop.node, oracle);
    }
    if !cruise_when_idle {
        return false;
    }
    // Cruise: follow a random incident road segment, as in the paper.
    if motion.at_clock_m > until_m {
        return false;
    }
    let at = motion.at;
    let neighbors: Vec<(NodeId, f64)> = graph.neighbors(at).collect();
    if neighbors.is_empty() {
        return false;
    }
    let (next, w) = neighbors[motion.rng.gen::<u64>() as usize % neighbors.len()];
    let start_clock = motion.at_clock_m.max(0.0);
    motion.path.push_back((next, w));
    motion.next_arrival_m = start_clock + w;
    true
}

/// Routes a vehicle towards `target`, filling its motion path. Returns
/// false when already there or the target is unreachable.
fn plan_path_to(motion: &mut Motion, target: NodeId, oracle: &dyn DistanceOracle) -> bool {
    let at = motion.at;
    if at == target {
        return false;
    }
    let Some(path) = oracle.shortest_path(at, target) else {
        // Unreachable target: drop the stop by cancelling the trip on
        // this vehicle (cannot happen on connected networks).
        return false;
    };
    let mut prev = at;
    let start_clock = motion.at_clock_m;
    let mut legs = VecDeque::with_capacity(path.len());
    for &node in path.iter().skip(1) {
        let leg = oracle.dist(prev, node);
        legs.push_back((node, leg));
        prev = node;
    }
    if legs.is_empty() {
        return false;
    }
    motion.next_arrival_m = start_clock + legs.front().unwrap().1;
    motion.path = legs;
    true
}

/// Serves the vehicle's next committed stop at `clock_m`, buffering the
/// metric/record/trace side effects for the apply phase.
fn serve_stop(
    vehicle: &mut Vehicle,
    clock_m: f64,
    oracle: &dyn DistanceOracle,
    outcome: &mut AdvanceOutcome,
) {
    let onboard_before = vehicle.onboard_count();
    let stop = vehicle.arrive_at_next_stop(clock_m, oracle);
    outcome.stops.push(ServedStop {
        trip: stop.trip,
        kind: stop.kind,
        clock_m,
        onboard_after: onboard_before + 1,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinetic_core::{Constraints, KineticConfig, PlannerKind, SolverKind};
    use rideshare_workload::{CityConfig, DemandConfig, Workload};
    use roadnet::CachedOracle;

    fn small_workload(trips: usize, seed: u64) -> Workload {
        Workload::generate(
            &CityConfig::small(),
            &DemandConfig {
                trips,
                span_seconds: 2.0 * 3_600.0,
                ..DemandConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn kinetic_simulation_serves_requests_without_violations() {
        let w = small_workload(60, 1);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 15,
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        assert_eq!(report.requests, 60);
        assert!(report.assigned > 0, "some requests must be served");
        assert_eq!(report.guarantee_violations, 0, "guarantees must hold");
        assert!(report.completed <= report.assigned);
        assert!(report.fleet_distance_km > 0.0);
        assert!(report.acrt_ms >= 0.0);
        assert!(report.span_seconds > 0.0);
        // Everyone assigned and picked up waited within the budget.
        assert!(report.mean_wait_seconds <= 600.0 + 1.0);
        if report.completed > 0 {
            assert!(report.mean_detour_ratio <= 1.2 + 1e-6);
        }
    }

    #[test]
    fn solver_planner_simulation_also_works() {
        let w = small_workload(30, 2);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 10,
            planner: PlannerKind::Solver(SolverKind::BranchBound),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        assert_eq!(report.requests, 30);
        assert_eq!(report.guarantee_violations, 0);
    }

    #[test]
    fn same_seed_gives_identical_reports() {
        let w = small_workload(40, 3);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 12,
            seed: 99,
            ..SimConfig::default()
        };
        let run = || {
            let mut sim = Simulation::new(&w.network, &oracle, config);
            sim.run(&w.trips)
        };
        let a = run();
        let b = run();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.occupancy.fleet_max, b.occupancy.fleet_max);
        assert!((a.fleet_distance_km - b.fleet_distance_km).abs() < 1e-6);
    }

    #[test]
    fn parallel_workers_match_sequential_bit_for_bit() {
        let w = small_workload(50, 8);
        let seq_oracle = CachedOracle::without_labels(&w.network);
        let base = SimConfig {
            vehicles: 12,
            seed: 42,
            ..SimConfig::default()
        };
        let mut seq = Simulation::new(&w.network, &seq_oracle, base);
        let seq_report = seq.run(&w.trips);
        let seq_assignments: Vec<_> = seq
            .trace()
            .iter()
            .map(|t| (t.trip, t.vehicle, t.was_assigned()))
            .collect();

        for workers in [1usize, 4] {
            let par_oracle = roadnet::ShardedOracle::without_labels(&w.network);
            // Threshold zero forces real worker threads even on this small
            // fleet, so the threaded engine path is actually exercised.
            let config = SimConfig {
                workers,
                dispatcher: kinetic_core::DispatcherConfig {
                    min_parallel_items: 0,
                    ..base.dispatcher
                },
                ..base
            };
            let mut par = Simulation::with_parallel(&w.network, &par_oracle, config);
            let report = par.run(&w.trips);
            assert_eq!(report.requests, seq_report.requests, "workers = {workers}");
            assert_eq!(report.assigned, seq_report.assigned, "workers = {workers}");
            assert_eq!(report.rejected, seq_report.rejected, "workers = {workers}");
            assert_eq!(
                report.completed, seq_report.completed,
                "workers = {workers}"
            );
            assert!((report.fleet_distance_km - seq_report.fleet_distance_km).abs() < 1e-9);
            let assignments: Vec<_> = par
                .trace()
                .iter()
                .map(|t| (t.trip, t.vehicle, t.was_assigned()))
                .collect();
            assert_eq!(assignments, seq_assignments, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_advance_matches_sequential() {
        // Movement-heavy scenario: cruising enabled, many vehicles, few
        // requests — most simulated time is advance_all, so this pins the
        // parallel movement phase (not just dispatch) to the sequential
        // engine's behaviour.
        let w = small_workload(25, 11);
        let seq_oracle = CachedOracle::without_labels(&w.network);
        let base = SimConfig {
            vehicles: 30,
            seed: 7,
            cruise_when_idle: true,
            ..SimConfig::default()
        };
        let mut seq = Simulation::new(&w.network, &seq_oracle, base);
        let seq_report = seq.run(&w.trips);
        let seq_locations: Vec<_> = seq.vehicles().iter().map(|v| v.location()).collect();

        for workers in [2usize, 4, 8] {
            let par_oracle = roadnet::ShardedOracle::without_labels(&w.network);
            let config = SimConfig {
                workers,
                dispatcher: kinetic_core::DispatcherConfig {
                    // Force real worker threads even for a 30-vehicle fleet.
                    min_parallel_items: 0,
                    ..base.dispatcher
                },
                ..base
            };
            let mut par = Simulation::with_parallel(&w.network, &par_oracle, config);
            let report = par.run(&w.trips);
            let locations: Vec<_> = par.vehicles().iter().map(|v| v.location()).collect();
            assert_eq!(locations, seq_locations, "workers = {workers}");
            assert_eq!(report.assigned, seq_report.assigned, "workers = {workers}");
            assert_eq!(
                report.completed, seq_report.completed,
                "workers = {workers}"
            );
            assert_eq!(
                report.guarantee_violations, seq_report.guarantee_violations,
                "workers = {workers}"
            );
            assert!(
                (report.fleet_distance_km - seq_report.fleet_distance_km).abs() == 0.0,
                "fleet distance must be bit-identical (workers = {workers}): {} vs {}",
                report.fleet_distance_km,
                seq_report.fleet_distance_km
            );
            assert!((report.mean_wait_seconds - seq_report.mean_wait_seconds).abs() == 0.0);
            assert!((report.mean_detour_ratio - seq_report.mean_detour_ratio).abs() == 0.0);
        }
    }

    #[test]
    fn batched_ticks_match_sequential_at_any_worker_count() {
        // A fixed batch window is one experiment: the sequential engine
        // (one dispatcher call per request inside the batch) and the
        // parallel engine (one genuinely batched call per window) must
        // agree on every assignment, trace row and counter.
        let w = small_workload(60, 13);
        let base = SimConfig {
            vehicles: 12,
            seed: 21,
            batch_window_seconds: 120.0,
            ..SimConfig::default()
        };
        let seq_oracle = CachedOracle::without_labels(&w.network);
        let mut seq = Simulation::new(&w.network, &seq_oracle, base);
        let seq_report = seq.run(&w.trips);
        assert_eq!(seq_report.requests, 60);
        let seq_assignments: Vec<_> = seq
            .trace()
            .iter()
            .map(|t| (t.trip, t.vehicle, t.was_assigned()))
            .collect();

        for workers in [1usize, 4] {
            let par_oracle = roadnet::ShardedOracle::without_labels(&w.network);
            let config = SimConfig {
                workers,
                dispatcher: kinetic_core::DispatcherConfig {
                    min_parallel_items: 0,
                    ..base.dispatcher
                },
                ..base
            };
            let mut par = Simulation::with_parallel(&w.network, &par_oracle, config);
            let report = par.run(&w.trips);
            assert_eq!(report.requests, seq_report.requests, "workers = {workers}");
            assert_eq!(report.assigned, seq_report.assigned, "workers = {workers}");
            assert_eq!(report.rejected, seq_report.rejected, "workers = {workers}");
            assert_eq!(
                report.completed, seq_report.completed,
                "workers = {workers}"
            );
            assert_eq!(report.guarantee_violations, 0, "workers = {workers}");
            assert!((report.fleet_distance_km - seq_report.fleet_distance_km).abs() == 0.0);
            let assignments: Vec<_> = par
                .trace()
                .iter()
                .map(|t| (t.trip, t.vehicle, t.was_assigned()))
                .collect();
            assert_eq!(assignments, seq_assignments, "workers = {workers}");
        }
    }

    #[test]
    fn zero_vehicles_rejects_everything() {
        let w = small_workload(10, 4);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        assert_eq!(report.requests, 10);
        assert_eq!(report.assigned, 0);
        assert_eq!(report.rejected, 10);
        assert_eq!(report.service_rate(), 0.0);
    }

    #[test]
    fn max_requests_limits_the_run() {
        let w = small_workload(50, 5);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 5,
            max_requests: Some(7),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        assert_eq!(report.requests, 7);
    }

    #[test]
    fn tighter_constraints_serve_fewer_requests() {
        let w = small_workload(80, 6);
        let oracle = CachedOracle::without_labels(&w.network);
        let run = |constraints: Constraints| {
            let config = SimConfig {
                vehicles: 8,
                constraints,
                cruise_when_idle: false,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(&w.network, &oracle, config);
            sim.run(&w.trips).assigned
        };
        let tight = run(Constraints::paper_setting(0));
        let loose = run(Constraints::paper_setting(4));
        assert!(
            loose >= tight,
            "looser constraints should never serve fewer requests (tight {tight}, loose {loose})"
        );
    }

    #[test]
    fn trace_log_records_full_lifecycles() {
        let w = small_workload(40, 9);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 15,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        let trace = sim.trace();
        assert_eq!(trace.len() as u64, report.requests);
        let assigned = trace.iter().filter(|t| t.was_assigned()).count() as u64;
        assert_eq!(assigned, report.assigned);
        let delivered = trace.iter().filter(|t| t.was_delivered()).count() as u64;
        assert_eq!(delivered, report.completed);
        // Every delivered rider has a consistent lifecycle and bounded detour.
        for t in trace.iter().filter(|t| t.was_delivered()) {
            assert!(t.picked_up_s.unwrap() >= t.submitted_s - 1e-9);
            assert!(t.delivered_s.unwrap() >= t.picked_up_s.unwrap());
            assert!(t.detour_ratio().unwrap() <= 1.2 + 1e-6);
            assert!(t.waited_s().unwrap() <= 600.0 + 1e-6);
        }
        // CSV export covers every request.
        let csv = trace.to_csv();
        assert_eq!(csv.trim_end().lines().count() as u64, report.requests + 1);
    }

    #[test]
    fn parked_fleet_still_serves_nearby_requests() {
        let w = small_workload(20, 7);
        let oracle = CachedOracle::without_labels(&w.network);
        let config = SimConfig {
            vehicles: 20,
            cruise_when_idle: false,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        let report = sim.run(&w.trips);
        assert!(report.assigned > 0);
        assert_eq!(report.guarantee_violations, 0);
    }
}

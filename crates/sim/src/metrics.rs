//! Simulation metrics and the final report.

use std::collections::BTreeMap;

/// Occupancy statistics over the fleet (Sec. VI-B of the paper reports, at
/// unlimited capacity, a maximum of 17 simultaneous passengers, an average
/// of 1.7 and an average of about 3.9 over the top-20% most loaded servers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OccupancyStats {
    /// Largest number of passengers simultaneously on board any vehicle.
    pub fleet_max: usize,
    /// Mean over vehicles of each vehicle's own maximum simultaneous load.
    pub mean_of_max: f64,
    /// Mean of the per-vehicle maxima over the top 20% most loaded vehicles.
    pub top20_mean_of_max: f64,
    /// Mean number of passengers on board at pickup events (a proxy for the
    /// typical sharing level actually experienced by riders).
    pub mean_at_pickup: f64,
}

/// Final report of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Requests submitted.
    pub requests: u64,
    /// Requests assigned to a vehicle.
    pub assigned: u64,
    /// Requests no vehicle could serve within the guarantees.
    pub rejected: u64,
    /// Average customer response time in milliseconds (wall-clock matching
    /// latency per request).
    pub acrt_ms: f64,
    /// Average per-vehicle evaluation latency bucketed by the vehicle's
    /// number of active requests: `(active requests, evaluations, mean ms)`.
    pub art_table: Vec<(usize, u64, f64)>,
    /// Mean realised waiting time of picked-up riders, in seconds.
    pub mean_wait_seconds: f64,
    /// Mean realised ride distance divided by the direct shortest distance.
    pub mean_detour_ratio: f64,
    /// Number of accepted requests whose realised waiting time or ride
    /// distance exceeded the guarantee. Must be zero: the matcher never
    /// accepts a request it cannot serve within the constraints.
    pub guarantee_violations: u64,
    /// Riders delivered before the simulation ended.
    pub completed: u64,
    /// Occupancy statistics.
    pub occupancy: OccupancyStats,
    /// Total distance driven by the fleet, in kilometers.
    pub fleet_distance_km: f64,
    /// Distance driven per delivered rider, in kilometers.
    pub distance_per_delivery_km: f64,
    /// Mean number of candidate vehicles the spatial filter returned per
    /// request.
    pub mean_candidates: f64,
    /// Mean number of candidates that actually reached a full schedule
    /// evaluation per request — with slack-aware pruning this is what the
    /// dispatcher really pays for, and the gap to `mean_candidates` is the
    /// pruning win.
    pub mean_candidates_evaluated: f64,
    /// Simulated span covered, in seconds.
    pub span_seconds: f64,
}

impl SimReport {
    /// Fraction of requests that were assigned.
    pub fn service_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.assigned as f64 / self.requests as f64
        }
    }

    /// ART (ms) for vehicles with exactly `active` active requests, if
    /// measured.
    pub fn art_ms(&self, active: usize) -> Option<f64> {
        self.art_table
            .iter()
            .find(|&&(a, _, _)| a == active)
            .map(|&(_, _, ms)| ms)
    }

    /// A compact single-line summary used by the experiment harnesses.
    pub fn summary_line(&self) -> String {
        format!(
            "requests={} assigned={} ({:.1}%) acrt={:.3}ms wait={:.0}s detour={:.2}x occ_max={} dist={:.0}km",
            self.requests,
            self.assigned,
            100.0 * self.service_rate(),
            self.acrt_ms,
            self.mean_wait_seconds,
            self.mean_detour_ratio,
            self.occupancy.fleet_max,
            self.fleet_distance_km,
        )
    }
}

/// Incremental collector the engine feeds while the simulation runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsCollector {
    pub wait_seconds: Vec<f64>,
    pub detour_ratios: Vec<f64>,
    pub guarantee_violations: u64,
    pub completed: u64,
    pub onboard_at_pickup: Vec<usize>,
    /// Simulation clock (seconds) of each pickup, aligned index-for-index
    /// with `wait_seconds` and `onboard_at_pickup` — what lets windowed
    /// harnesses bucket those samples by simulated time.
    pub pickup_clock_seconds: Vec<f64>,
    pub per_vehicle_max_onboard: BTreeMap<u32, usize>,
    pub fleet_distance_m: f64,
}

impl MetricsCollector {
    pub fn record_pickup(
        &mut self,
        vehicle: u32,
        onboard_after: usize,
        waited_seconds: f64,
        clock_seconds: f64,
    ) {
        self.wait_seconds.push(waited_seconds);
        self.onboard_at_pickup.push(onboard_after);
        self.pickup_clock_seconds.push(clock_seconds);
        let e = self.per_vehicle_max_onboard.entry(vehicle).or_insert(0);
        if onboard_after > *e {
            *e = onboard_after;
        }
    }

    pub fn record_delivery(&mut self, detour_ratio: f64, violated: bool) {
        self.completed += 1;
        self.detour_ratios.push(detour_ratio);
        if violated {
            self.guarantee_violations += 1;
        }
    }

    pub fn record_wait_violation(&mut self) {
        self.guarantee_violations += 1;
    }

    pub fn occupancy(&self, fleet_size: usize) -> OccupancyStats {
        let mut maxima: Vec<usize> = self.per_vehicle_max_onboard.values().copied().collect();
        // Vehicles that never picked anyone up count as zero.
        maxima.resize(fleet_size.max(maxima.len()), 0);
        maxima.sort_unstable_by(|a, b| b.cmp(a));
        let fleet_max = maxima.first().copied().unwrap_or(0);
        let mean_of_max = if maxima.is_empty() {
            0.0
        } else {
            maxima.iter().sum::<usize>() as f64 / maxima.len() as f64
        };
        let top = (maxima.len() as f64 * 0.2).ceil().max(1.0) as usize;
        let top20_mean_of_max = maxima.iter().take(top).sum::<usize>() as f64 / top as f64;
        let mean_at_pickup = if self.onboard_at_pickup.is_empty() {
            0.0
        } else {
            self.onboard_at_pickup.iter().sum::<usize>() as f64
                / self.onboard_at_pickup.len() as f64
        };
        OccupancyStats {
            fleet_max,
            mean_of_max,
            top20_mean_of_max,
            mean_at_pickup,
        }
    }

    pub fn mean_wait_seconds(&self) -> f64 {
        mean(&self.wait_seconds)
    }

    pub fn mean_detour_ratio(&self) -> f64 {
        mean(&self.detour_ratios)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_statistics() {
        let mut c = MetricsCollector::default();
        c.record_pickup(0, 1, 30.0, 100.0);
        c.record_pickup(0, 2, 60.0, 200.0);
        c.record_pickup(1, 4, 90.0, 300.0);
        c.record_pickup(2, 1, 10.0, 400.0);
        assert_eq!(c.pickup_clock_seconds, vec![100.0, 200.0, 300.0, 400.0]);
        let occ = c.occupancy(5);
        assert_eq!(occ.fleet_max, 4);
        // per-vehicle maxima: [4, 2, 1, 0, 0] -> mean 1.4, top-1 (20% of 5) = 4
        assert!((occ.mean_of_max - 1.4).abs() < 1e-9);
        assert!((occ.top20_mean_of_max - 4.0).abs() < 1e-9);
        assert!((occ.mean_at_pickup - 2.0).abs() < 1e-9);
        assert!((c.mean_wait_seconds() - 47.5).abs() < 1e-9);
    }

    #[test]
    fn deliveries_and_violations() {
        let mut c = MetricsCollector::default();
        c.record_delivery(1.1, false);
        c.record_delivery(1.3, true);
        c.record_wait_violation();
        assert_eq!(c.completed, 2);
        assert_eq!(c.guarantee_violations, 2);
        assert!((c.mean_detour_ratio() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn report_helpers() {
        let report = SimReport {
            requests: 10,
            assigned: 8,
            art_table: vec![(0, 5, 0.2), (2, 3, 0.9)],
            ..SimReport::default()
        };
        assert!((report.service_rate() - 0.8).abs() < 1e-9);
        assert_eq!(report.art_ms(2), Some(0.9));
        assert_eq!(report.art_ms(7), None);
        assert!(report.summary_line().contains("assigned=8"));
        assert_eq!(SimReport::default().service_rate(), 0.0);
    }

    #[test]
    fn empty_collector_is_safe() {
        let c = MetricsCollector::default();
        let occ = c.occupancy(3);
        assert_eq!(occ.fleet_max, 0);
        assert_eq!(c.mean_wait_seconds(), 0.0);
        assert_eq!(c.mean_detour_ratio(), 0.0);
    }
}

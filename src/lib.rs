//! Large Scale Real-time Ridesharing with Service Guarantee on Road Networks.
//!
//! This is the umbrella crate of the workspace: it re-exports the individual
//! crates so applications can depend on a single name, and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! The workspace reproduces Huang, Jin, Bastani and Wang's VLDB 2014 paper:
//!
//! * [`roadnet`] — road-network graph engine, shortest paths, hub labels,
//!   the paper's LRU caches and synthetic network generators;
//! * [`spatial`] — the grid-based moving-object index used to pre-filter
//!   candidate vehicles;
//! * [`mip`] (crate `rideshare-mip`) — a from-scratch simplex +
//!   branch-and-bound solver backing the MIP baseline;
//! * [`core`] (crate `kinetic-core`) — the scheduling model, the brute
//!   force / branch-and-bound / MIP matchers and the kinetic tree with
//!   slack-time filtering and hotspot clustering;
//! * [`sim`] (crate `rideshare-sim`) — the real-time simulation framework
//!   with ACRT/ART/occupancy metrics;
//! * [`workload`] (crate `rideshare-workload`) — synthetic Shanghai-like
//!   road networks and taxi demand streams;
//! * [`serve`] (crate `rideshare-serve`) — the online dispatch service
//!   mode: open-loop arrivals, a bounded ingress queue with SLO-gated
//!   admission, and non-blocking serving metrics.
//!
//! # Quickstart
//!
//! ```
//! use ridesharing::prelude::*;
//!
//! // A small synthetic city and a burst of trip requests.
//! let workload = Workload::generate(
//!     &CityConfig::small(),
//!     &DemandConfig { trips: 50, ..DemandConfig::default() },
//!     7,
//! );
//! let oracle = CachedOracle::without_labels(&workload.network);
//!
//! // A fleet of 10 taxis matched with the kinetic tree (slack-time variant).
//! let config = SimConfig {
//!     vehicles: 10,
//!     planner: PlannerKind::Kinetic(KineticConfig::slack()),
//!     ..SimConfig::default()
//! };
//! let mut sim = Simulation::new(&workload.network, &oracle, config);
//! let report = sim.run(&workload.trips);
//! assert_eq!(report.guarantee_violations, 0);
//! ```

pub use kinetic_core as core;
pub use rideshare_mip as mip;
pub use rideshare_serve as serve;
pub use rideshare_sim as sim;
pub use rideshare_workload as workload;
pub use roadnet;
pub use spatial;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use kinetic_core::{
        AssignmentOutcome, BranchBoundSolver, BruteForceSolver, Constraints, Dispatcher,
        DispatcherConfig, InsertionSolver, KineticConfig, KineticTree, MipScheduleSolver,
        PlannerKind, ScheduleSolver, SchedulingProblem, SolverKind, SolverOutcome, Stop, StopKind,
        TripRequest, Vehicle, WaitingTrip,
    };
    pub use rideshare_serve::{
        PoissonArrivals, ServeConfig, ServeLoop, ServeReport, ServiceModel, SloConfig,
        TraceArrivals,
    };
    pub use rideshare_sim::{SimConfig, SimReport, Simulation};
    pub use rideshare_workload::{CityConfig, DemandConfig, TripEvent, Workload};
    pub use roadnet::{
        CachedOracle, DijkstraEngine, DistanceOracle, GeneratorConfig, GraphBuilder, HubLabels,
        NetworkKind, NodeId, NodeLocator, Point, RoadNetwork, ShortestPathEngine,
    };
    pub use spatial::{GridIndex, Position};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let c = Constraints::paper_default();
        assert_eq!(c.max_wait, 8_400.0);
        let cfg = SimConfig::default();
        assert_eq!(cfg.speed_mps, 14.0);
    }
}

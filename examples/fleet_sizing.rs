//! Fleet sizing: the smallest fleet that meets a target service rate.
//!
//! Operators ask the inverse of the paper's Figure 6(c): not "how fast is
//! matching at a given fleet size" but "how many vehicles do I need so that
//! 95% of requests can be served within the guarantee?" This example sweeps
//! the fleet size with the kinetic-tree matcher and reports the service
//! rate, the sharing level and the distance driven per delivered rider (the
//! efficiency argument for ridesharing).
//!
//! ```text
//! cargo run --release --example fleet_sizing
//! ```

use ridesharing::prelude::*;

fn main() {
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 500,
            span_seconds: 4.0 * 3_600.0,
            ..DemandConfig::default()
        },
        5,
    );
    let oracle = CachedOracle::without_labels(&workload.network);
    let target = 0.95;
    println!(
        "{} requests over 4 h; searching for the smallest fleet with ≥ {:.0}% service\n",
        workload.trips.len(),
        target * 100.0
    );
    println!(
        "{:>8} {:>10} {:>12} {:>16} {:>18}",
        "fleet", "served %", "ACRT (ms)", "mean at pickup", "km per delivery"
    );
    let mut smallest: Option<usize> = None;
    for fleet in [4usize, 6, 8, 12, 16, 24, 32] {
        let config = SimConfig {
            vehicles: fleet,
            capacity: 4,
            constraints: Constraints::paper_default(),
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&workload.network, &oracle, config);
        let report = sim.run(&workload.trips);
        println!(
            "{:>8} {:>10.1} {:>12.3} {:>16.2} {:>18.2}",
            fleet,
            100.0 * report.service_rate(),
            report.acrt_ms,
            report.occupancy.mean_at_pickup,
            report.distance_per_delivery_km,
        );
        if smallest.is_none() && report.service_rate() >= target {
            smallest = Some(fleet);
        }
    }
    match smallest {
        Some(fleet) => println!("\n→ {fleet} vehicles are enough to serve {:.0}% of this demand.", target * 100.0),
        None => println!("\n→ even the largest tested fleet missed the {:.0}% target; add vehicles or loosen the guarantee.", target * 100.0),
    }
}

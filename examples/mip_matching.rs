//! A 2-trip insertion solved end to end by the MIP matcher (Sec. III-A).
//!
//! One vehicle already carries a passenger and has accepted (but not yet
//! picked up) another; a new request arrives. The matcher builds the
//! paper's MTZ mixed-integer formulation over the unfinished stops and
//! hands it to the workspace's sparse revised-simplex + warm-started
//! branch-and-bound solver, then the resulting schedule is validated
//! against every service guarantee and cross-checked against brute force.
//!
//! ```text
//! cargo run --release --example mip_matching
//! ```

use kinetic_core::algorithms::{
    mip_model_size, BruteForceSolver, MipScheduleSolver, ScheduleSolver, SolverOutcome,
};
use kinetic_core::problem::{OnboardTrip, SchedulingProblem, WaitingTrip};
use roadnet::{CachedOracle, DistanceOracle, GeneratorConfig, NetworkKind};

fn main() {
    // A small grid city and its exact distance oracle.
    let network = GeneratorConfig {
        kind: NetworkKind::Grid { rows: 8, cols: 8 },
        seed: 7,
        ..GeneratorConfig::default()
    }
    .generate();
    let oracle = CachedOracle::without_labels(&network);

    // The vehicle sits at vertex 0 with one passenger on board (drop-off at
    // vertex 27) and one accepted trip still waiting at vertex 12. A new
    // request from vertex 45 to vertex 18 is being evaluated — by
    // convention it joins the waiting set, making this a 2-trip insertion.
    let mut problem = SchedulingProblem::new(0, 0.0, 4);
    problem.onboard.push(OnboardTrip {
        trip: 1,
        dropoff: 27,
        dropoff_deadline: 12_000.0,
    });
    for (trip, pickup, dropoff) in [(2u64, 12u32, 60u32), (3, 45, 18)] {
        let direct = oracle.dist(pickup, dropoff);
        problem.waiting.push(WaitingTrip {
            trip,
            pickup,
            dropoff,
            // 10 min waiting guarantee (8,400 m at 14 m/s) and a 20% detour
            // allowance — the paper's default service constraints.
            pickup_deadline: 8_400.0,
            max_ride: direct * 1.2,
        });
    }

    let (vars, cons) = mip_model_size(&problem);
    println!(
        "scheduling problem: {} onboard + {} waiting -> MIP with ~{} variables, ~{} constraints",
        problem.onboard.len(),
        problem.waiting.len(),
        vars,
        cons,
    );

    // Solve with the MIP matcher and decode the optimal stop ordering.
    let outcome = MipScheduleSolver::default().solve(&problem, &oracle);
    let SolverOutcome::Feasible { cost, schedule } = &outcome else {
        panic!("expected a feasible schedule, got {outcome:?}");
    };
    println!("\noptimal schedule ({cost:.0} m total):");
    for (i, stop) in schedule.iter().enumerate() {
        println!("  {}. {stop}", i + 1);
    }

    // The service guarantees hold: validate re-walks the schedule against
    // the oracle and checks every deadline, detour and capacity bound.
    let validated = problem
        .validate(schedule, &oracle)
        .expect("MIP schedule keeps every service guarantee");
    assert!((validated - cost).abs() < 1e-6);

    // And the MIP optimum agrees with exhaustive enumeration.
    let brute = BruteForceSolver::default().solve(&problem, &oracle);
    assert_eq!(
        brute.cost().map(|c| (c * 1e6).round()),
        Some((cost * 1e6).round()),
        "MIP and brute force must agree on the optimum"
    );
    println!("\nvalidated: all guarantees hold; brute force agrees on {validated:.0} m");
}

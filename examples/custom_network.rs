//! Using the low-level API directly: a hand-built road network, explicit
//! vehicles and the dispatcher — no simulator, no workload generator.
//!
//! This is the integration surface an operator's own dispatch system would
//! use: they already know where their vehicles are and when requests arrive;
//! they only need the matcher.
//!
//! ```text
//! cargo run --release --example custom_network
//! ```

use ridesharing::prelude::*;

fn main() {
    // A small downtown: a 6x6 grid described in the text format understood
    // by `roadnet::parse_network` (here built programmatically instead).
    let mut b = GraphBuilder::new();
    for r in 0..6 {
        for c in 0..6 {
            b.add_node(Point::new(c as f64 * 200.0, r as f64 * 200.0));
        }
    }
    let id = |r: u32, c: u32| r * 6 + c;
    for r in 0..6 {
        for c in 0..6 {
            if c + 1 < 6 {
                b.add_edge(id(r, c), id(r, c + 1), 200.0);
            }
            if r + 1 < 6 {
                b.add_edge(id(r, c), id(r + 1, c), 200.0);
            }
        }
    }
    let network = b.build();
    let oracle = CachedOracle::without_labels(&network);

    // Three taxis parked at depots, all using the kinetic tree.
    let planner = PlannerKind::Kinetic(KineticConfig::slack());
    let mut vehicles = vec![
        Vehicle::new(0, id(0, 0), 4, planner, 0.0),
        Vehicle::new(1, id(5, 5), 4, planner, 0.0),
        Vehicle::new(2, id(0, 5), 4, planner, 0.0),
    ];
    let mut index = GridIndex::new(500.0);
    for v in &vehicles {
        let p = network.point(v.location());
        index.insert(v.id(), Position::new(p.x, p.y));
    }
    let mut dispatcher = Dispatcher::new(DispatcherConfig::default());

    // Four requests arriving over two minutes (times in meter-equivalents:
    // seconds × 14 m/s).
    let constraints = Constraints::new(5.0 * 60.0 * 14.0, 0.2); // 5 min / 20%
    let requests = [
        TripRequest::new(1, id(1, 1), id(4, 4), 0.0, constraints),
        TripRequest::new(2, id(1, 2), id(4, 5), 280.0, constraints),
        TripRequest::new(3, id(5, 4), id(2, 0), 700.0, constraints),
        TripRequest::new(4, id(0, 4), id(3, 3), 1_400.0, constraints),
    ];
    for request in &requests {
        let outcome = dispatcher.assign(
            &request.clone(),
            &mut vehicles,
            &network,
            &mut index,
            &oracle,
        );
        match outcome {
            AssignmentOutcome::Assigned {
                vehicle,
                cost,
                candidates,
            } => println!(
                "request {} -> taxi {vehicle} (schedule length {:.0} m, {candidates} candidates examined)",
                request.id, cost
            ),
            AssignmentOutcome::Rejected { candidates } => println!(
                "request {} -> rejected ({candidates} candidates, none feasible)",
                request.id
            ),
        }
    }

    println!("\ncommitted schedules:");
    for v in &vehicles {
        let route: Vec<String> = v.route().iter().map(|s| s.to_string()).collect();
        println!(
            "  taxi {}: {} active trips, route [{}]",
            v.id(),
            v.active_trip_count(),
            route.join(" -> ")
        );
    }
    let stats = dispatcher.stats();
    println!(
        "\nACRT {:.3} ms over {} requests, {:.1} candidates per request",
        stats.acrt_ms(),
        stats.requests,
        stats.mean_candidates()
    );
}

//! Quickstart: simulate a small city served by a kinetic-tree fleet.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ridesharing::prelude::*;

fn main() {
    // 1. A synthetic city (~100 intersections) and one morning of demand.
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 400,
            span_seconds: 6.0 * 3_600.0,
            ..DemandConfig::default()
        },
        2024,
    );
    println!(
        "city: {} intersections, {} road segments, {} requests over {:.1} h",
        workload.network.node_count(),
        workload.network.edge_count(),
        workload.trips.len(),
        workload.span_seconds() / 3_600.0,
    );

    // 2. A distance oracle (Dijkstra + the paper's LRU caches).
    let oracle = CachedOracle::without_labels(&workload.network);

    // 3. Twenty taxis, capacity 4, 10 min / 20% service guarantee, matched
    //    with the slack-time kinetic tree.
    let config = SimConfig {
        vehicles: 20,
        capacity: 4,
        constraints: Constraints::paper_default(),
        planner: PlannerKind::Kinetic(KineticConfig::slack()),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&workload.network, &oracle, config);
    let report = sim.run(&workload.trips);

    // 4. What happened?
    println!("\n{}", report.summary_line());
    println!(
        "service rate          : {:.1}%",
        100.0 * report.service_rate()
    );
    println!(
        "matching latency (ACRT): {:.3} ms per request",
        report.acrt_ms
    );
    println!(
        "mean waiting time      : {:.0} s (guarantee: {:.0} s)",
        report.mean_wait_seconds,
        config.constraints.max_wait / config.speed_mps
    );
    println!(
        "mean detour            : {:.2}x the direct route (guarantee: {:.2}x)",
        report.mean_detour_ratio,
        1.0 + config.constraints.detour_factor
    );
    println!(
        "guarantee violations   : {} (must be zero)",
        report.guarantee_violations
    );
    println!(
        "busiest vehicle carried {} passengers at once",
        report.occupancy.fleet_max
    );
    assert_eq!(report.guarantee_violations, 0);
}

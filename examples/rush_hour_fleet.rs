//! Rush hour: how the service guarantee setting changes what a fixed fleet
//! can deliver.
//!
//! The paper's Table I sweeps the waiting time / detour constraint from
//! 5 min/10% to 25 min/50%. With a fixed fleet, looser guarantees let the
//! dispatcher accept more requests (more ridesharing) at the price of longer
//! waits and detours. This example runs a morning-rush workload through all
//! five settings and prints the trade-off.
//!
//! ```text
//! cargo run --release --example rush_hour_fleet
//! ```

use ridesharing::prelude::*;

fn main() {
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 600,
            span_seconds: 3.0 * 3_600.0, // a three-hour morning rush
            hotspot_fraction: 0.5,
            ..DemandConfig::default()
        },
        11,
    );
    let oracle = CachedOracle::without_labels(&workload.network);
    println!(
        "morning rush: {} requests over 3 h, 12 taxis of capacity 4\n",
        workload.trips.len()
    );
    println!(
        "{:<12} {:>9} {:>11} {:>13} {:>13} {:>10}",
        "guarantee", "served %", "ACRT (ms)", "mean wait (s)", "mean detour", "violations"
    );
    for i in 0..5 {
        let constraints = Constraints::paper_setting(i);
        let config = SimConfig {
            vehicles: 12,
            capacity: 4,
            constraints,
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&workload.network, &oracle, config);
        let report = sim.run(&workload.trips);
        println!(
            "{:<12} {:>9.1} {:>11.3} {:>13.0} {:>13.2} {:>10}",
            format!("{}min/{}%", (i + 1) * 5, (i + 1) * 10),
            100.0 * report.service_rate(),
            report.acrt_ms,
            report.mean_wait_seconds,
            report.mean_detour_ratio,
            report.guarantee_violations,
        );
    }
    println!("\nLooser guarantees serve more riders with the same fleet — the core\nridesharing trade-off the paper quantifies.");
}

//! Airport surge: why hotspot clustering exists.
//!
//! When many passengers request rides from (almost) the same place at the
//! same time — an airport arrivals hall — every ordering of the co-located
//! pickups is a valid schedule and the basic kinetic tree blows up
//! combinatorially (Sec. V of the paper). This example drives the same
//! surge through the basic, slack-time and hotspot-clustering trees and
//! prints the matching latency and the size of the busiest vehicle's tree.
//!
//! ```text
//! cargo run --release --example airport_hotspot
//! ```

use ridesharing::prelude::*;

fn surge_workload() -> Workload {
    // Demand almost entirely attached to the airport hotspot, arriving in a
    // short window, so a handful of vehicles see many co-located pickups.
    Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 250,
            span_seconds: 1_800.0,
            hotspot_fraction: 0.95,
            ..DemandConfig::default()
        },
        7,
    )
}

fn run(workload: &Workload, oracle: &CachedOracle<'_>, name: &str, config: KineticConfig) {
    let sim_config = SimConfig {
        vehicles: 8,
        capacity: usize::MAX, // unlimited, as in the paper's hardest setting
        constraints: Constraints::paper_setting(3), // 20 min / 40%
        planner: PlannerKind::Kinetic(config),
        cruise_when_idle: false,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&workload.network, oracle, sim_config);
    let report = sim.run(&workload.trips);
    let largest_tree = sim
        .vehicles()
        .iter()
        .filter_map(|v| v.tree().map(|t| t.stats().nodes))
        .max()
        .unwrap_or(0);
    println!(
        "{name:<14} acrt={:>8.3} ms  served={:>5.1}%  max onboard={:>2}  largest tree={:>7} nodes",
        report.acrt_ms,
        100.0 * report.service_rate(),
        report.occupancy.fleet_max,
        largest_tree,
    );
}

fn main() {
    let workload = surge_workload();
    let oracle = CachedOracle::without_labels(&workload.network);
    println!(
        "airport surge: {} requests in 30 minutes, 8 vehicles, unlimited capacity\n",
        workload.trips.len()
    );
    run(&workload, &oracle, "basic tree", KineticConfig::basic());
    run(&workload, &oracle, "slack tree", KineticConfig::slack());
    run(
        &workload,
        &oracle,
        "hotspot tree",
        KineticConfig::hotspot(400.0),
    );
    println!(
        "\nThe hotspot tree keeps the per-vehicle tree small by pinning co-located\n\
         stops together (Theorem 2 bounds the extra cost by 2(m+1)·θ)."
    );
}

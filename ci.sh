#!/usr/bin/env bash
# Full local CI for the workspace: formatting, lints, release build,
# tests (unit, property, integration, doc) and bench compilation.
# Mirrors .github/workflows/ci.yml so a green ./ci.sh means a green PR.
set -euo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
run cargo bench --no-run
# bench-smoke: sequential vs parallel dispatch must be bit-identical;
# BENCH_dispatch.json records ACRT per worker count (CI uploads it as an
# artifact).
run cargo run --release -p rideshare-bench --bin bench_summary -- --scale smoke --out BENCH_dispatch.json

echo
echo "CI OK"

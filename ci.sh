#!/usr/bin/env bash
# Full local CI for the workspace: formatting, lints, release build,
# tests (unit, property, integration, doc) and bench compilation.
# Mirrors .github/workflows/ci.yml so a green ./ci.sh means a green PR.
set -euo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
run cargo bench --no-run
# bench-smoke: sequential vs parallel dispatch must be bit-identical;
# hub-label builds must match Dijkstra ground truth, be bit-identical
# across worker counts, round-trip through the on-disk format, and stay
# >= 3x faster than the frozen seed pipeline at 40x40. BENCH_dispatch.json
# and BENCH_hublabel.json record the numbers (CI uploads both artifacts).
run cargo run --release -p rideshare-bench --bin bench_summary -- --scale smoke --out BENCH_dispatch.json --hublabel-out BENCH_hublabel.json

echo
echo "CI OK"

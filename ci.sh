#!/usr/bin/env bash
# Full local CI for the workspace: formatting, lints, release build,
# tests (unit, property, integration, doc) and bench compilation.
# Mirrors .github/workflows/ci.yml so a green ./ci.sh means a green PR.
set -euo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
run cargo bench --no-run

echo
echo "CI OK"

#!/usr/bin/env bash
# Full local CI for the workspace: formatting, lints, release build,
# tests (unit, property, integration, doc) and bench compilation.
# Mirrors .github/workflows/ci.yml so a green ./ci.sh means a green PR.
set -euo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
# Static-analysis gate: rideshare-lint lexes every workspace .rs file and
# enforces the determinism policy (no unordered hash iteration, wall
# clock or ambient entropy in critical crates) and the serve panic
# policy. Exits nonzero on any unwaived violation, on a waiver without a
# reason, and on a waiver that no longer suppresses anything. Writes the
# committed BENCH_lint.json inventory (CI uploads it as the eighth
# artifact); `cargo test` runs the same gate via crates/lint's
# workspace_gate test.
run cargo run --release -p rideshare-lint -- --root . --out BENCH_lint.json
run cargo test -q
# Doc tests again, explicitly: `cargo test -q` runs them for the library
# crates, but a dedicated invocation makes a doctest-only breakage obvious
# in the log instead of burying it mid-suite.
run cargo test --doc -q
# Doc build doubles as the missing_docs assertion: the workspace
# [workspace.lints] table turns on missing_docs for every non-compat
# crate, so -D warnings fails this step when a public item loses its
# documentation.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
run cargo bench --no-run
# bench-smoke: sequential vs parallel dispatch must be bit-identical;
# hub-label builds must match Dijkstra ground truth, be bit-identical
# across worker counts, round-trip through the on-disk format, and stay
# >= 3x faster than the frozen seed pipeline at 40x40; the sparse MIP
# solver must agree with the frozen dense baseline and beat it >= 10x at
# 3 trips on board. BENCH_dispatch.json, BENCH_hublabel.json and
# BENCH_mip.json record the numbers (CI uploads all three artifacts).
run cargo run --release -p rideshare-bench --bin bench_summary -- --scale smoke --out BENCH_dispatch.json --hublabel-out BENCH_hublabel.json --mip-out BENCH_mip.json
# Replay gate: the paper_replay harness at quick scale over a truncated
# stream. The first invocation exercises the persisted-oracle store
# (build -> save -> reload-verify), the interrupt-at-midpoint + resume
# experiment and the pruning identity check (--verify-pruning replays a
# prefix with slack screening disabled and asserts every observable
# matches), gating on a bit-identical final report, zero guarantee
# violations, a minimum dispatch throughput (--min-trips-per-sec — the
# committed BENCH_replay.json runs ~10x above this floor, so only a
# real regression trips it) and the pruning win itself
# (--max-evaluated-fraction 0.2, i.e. at least a 5x reduction; the
# measured quick-scale fraction is ~0.004); the second proves a cold
# process reloads
# the persisted labels instead of rebuilding. Local runs write under
# target/ so they never clobber the committed paper-scale
# BENCH_replay.json (the full day takes hours to regenerate); the
# GitHub workflow writes BENCH_replay.json in its ephemeral checkout
# because that is the path the artifact upload step collects.
run cargo run --release -p rideshare-bench --bin paper_replay -- --scale quick --max-trips 2000 --verify-resume --verify-pruning --min-trips-per-sec 50 --max-evaluated-fraction 0.2 --fresh --out target/BENCH_replay_ci.json --checkpoint target/replay-ci.ckpt
run cargo run --release -p rideshare-bench --bin paper_replay -- --scale quick --max-trips 200 --require-reloaded --fresh --out target/BENCH_replay_reload.json --checkpoint target/replay-ci-reload.ckpt
# Serve gate: the deterministic truncated capacity sweep (fixed ladder,
# synthetic cost model). Fails on any guarantee violation at any offered
# load or when mean admission latency is not monotone in load. Writes the
# BENCH_serve.json artifact (CI uploads it as the fifth artifact).
run cargo run --release -p rideshare-bench --bin serve_sweep -- --smoke --out target/BENCH_serve_ci.json
# Chaos gate: deterministic fault injection over the same serve stack —
# seeded oracle spikes, sink saturation and torn checkpoint writes across
# a calm/faulted/overload rung ladder, a kill-at-tick-25 crash recovered
# from checkpoint + journal, and an injected label-store IO fault. Fails
# on any accounting drift, any guarantee violation under faults, a ladder
# that never degrades under overload (or degrades when calm), a recovered
# report that is not bit-identical to the uninterrupted run, or a store
# fault that does not surface its fallback reason.
run cargo run --release -p rideshare-bench --bin chaos_smoke -- --out target/BENCH_chaos_ci.json
# Shard gate: the partitioned engine at 1/2/4/8 shards must be
# bit-identical to the single-shard reference (reports, traces, final
# fleet) with zero guarantee violations, and at k >= 2 the run must
# actually exercise the broker (vehicle migrations and boundary-request
# dispatches). Local runs use --smoke (small city, Dijkstra oracle) and
# write under target/ so they never clobber the committed medium-city
# BENCH_shard.json.
run cargo run --release -p rideshare-bench --bin shard_smoke -- --smoke --out target/BENCH_shard_ci.json

echo
echo "CI OK"

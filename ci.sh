#!/usr/bin/env bash
# Full local CI for the workspace: formatting, lints, release build,
# tests (unit, property, integration, doc) and bench compilation.
# Mirrors .github/workflows/ci.yml so a green ./ci.sh means a green PR.
set -euo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
# Doc tests again, explicitly: `cargo test -q` runs them for the library
# crates, but a dedicated invocation makes a doctest-only breakage obvious
# in the log instead of burying it mid-suite.
run cargo test --doc -q
# Doc build doubles as the missing_docs assertion: `rideshare-mip` and
# `roadnet` enable #![warn(missing_docs)], so -D warnings fails this step
# when a public item loses its documentation.
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
run cargo bench --no-run
# bench-smoke: sequential vs parallel dispatch must be bit-identical;
# hub-label builds must match Dijkstra ground truth, be bit-identical
# across worker counts, round-trip through the on-disk format, and stay
# >= 3x faster than the frozen seed pipeline at 40x40; the sparse MIP
# solver must agree with the frozen dense baseline and beat it >= 10x at
# 3 trips on board. BENCH_dispatch.json, BENCH_hublabel.json and
# BENCH_mip.json record the numbers (CI uploads all three artifacts).
run cargo run --release -p rideshare-bench --bin bench_summary -- --scale smoke --out BENCH_dispatch.json --hublabel-out BENCH_hublabel.json --mip-out BENCH_mip.json

echo
echo "CI OK"

//! Property-based tests of the scheduling core and the kinetic tree.

use proptest::prelude::*;
use ridesharing::prelude::*;
use roadnet::MatrixOracle;

/// A small road network plus a set of candidate trips drawn over it.
fn instance_strategy() -> impl Strategy<Value = (MatrixOracle, Vec<(u32, u32)>, f64, usize)> {
    (
        4usize..7,
        4usize..7,
        0u64..500,
        prop::collection::vec((0u32..36, 0u32..36), 1..4),
        0.2f64..1.0,
        1usize..5,
    )
        .prop_map(|(rows, cols, seed, pairs, looseness, capacity)| {
            let g = GeneratorConfig {
                kind: NetworkKind::Grid { rows, cols },
                seed,
                ..GeneratorConfig::default()
            }
            .generate();
            let n = g.node_count() as u32;
            let pairs = pairs
                .into_iter()
                .map(|(a, b)| {
                    let a = a % n;
                    let mut b = b % n;
                    if a == b {
                        b = (b + 1) % n;
                    }
                    (a, b)
                })
                .collect();
            (MatrixOracle::new(&g), pairs, looseness, capacity)
        })
}

fn build_problem(
    oracle: &MatrixOracle,
    pairs: &[(u32, u32)],
    looseness: f64,
    capacity: usize,
) -> SchedulingProblem {
    let mut p = SchedulingProblem::new(0, 0.0, capacity);
    for (i, &(s, e)) in pairs.iter().enumerate() {
        let direct = oracle.dist(s, e);
        p.waiting.push(WaitingTrip {
            trip: i as u64,
            pickup: s,
            dropoff: e,
            pickup_deadline: 1_500.0 + looseness * 6_000.0,
            max_ride: direct * (1.0 + looseness),
        });
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any schedule accepted by a solver passes full validation, and the
    /// exact solvers agree with each other; the kinetic tree built by
    /// sequential insertion reaches the same optimum.
    #[test]
    fn solvers_agree_and_schedules_validate((oracle, pairs, looseness, capacity) in instance_strategy()) {
        let p = build_problem(&oracle, &pairs, looseness, capacity);
        let bf = BruteForceSolver::default().solve(&p, &oracle);
        let bb = BranchBoundSolver::default().solve(&p, &oracle);
        match (&bf, &bb) {
            (SolverOutcome::Feasible { cost: a, schedule }, SolverOutcome::Feasible { cost: b, .. }) => {
                prop_assert!((a - b).abs() < 1e-5);
                let recomputed = p.validate(schedule, &oracle).expect("must validate");
                prop_assert!((recomputed - a).abs() < 1e-6);

                // Kinetic tree by sequential insertion.
                let mut tree = KineticTree::new(p.start, p.now, p.capacity, KineticConfig::slack());
                let mut all_inserted = true;
                for t in &p.waiting {
                    match tree.try_insert(*t, &oracle) {
                        Ok((next, _)) => tree = next,
                        Err(_) => { all_inserted = false; break; }
                    }
                }
                prop_assert!(all_inserted, "tree rejected a feasible instance");
                let (cost, route) = tree.best_route().expect("route exists");
                prop_assert!((cost - a).abs() < 1e-5, "tree {cost} vs optimum {a}");
                prop_assert!(p.is_valid(&route, &oracle));
            }
            (SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
            other => prop_assert!(false, "feasibility disagreement: {other:?}"),
        }
    }

    /// Removing a trip from a valid schedule keeps it valid (the paper's key
    /// observation enabling the kinetic tree).
    #[test]
    fn dropping_a_trip_preserves_validity((oracle, pairs, looseness, capacity) in instance_strategy()) {
        let p = build_problem(&oracle, &pairs, looseness, capacity);
        if let SolverOutcome::Feasible { schedule, .. } = BruteForceSolver::default().solve(&p, &oracle) {
            for victim in 0..p.waiting.len() as u64 {
                let mut reduced = p.clone();
                reduced.waiting.retain(|t| t.trip != victim);
                let reduced_schedule: Vec<Stop> =
                    schedule.iter().copied().filter(|s| s.trip != victim).collect();
                prop_assert!(
                    reduced.is_valid(&reduced_schedule, &oracle),
                    "dropping trip {victim} broke validity"
                );
            }
        }
    }

    /// The best route of a kinetic tree never improves when constraints are
    /// tightened, and always satisfies the walker-based validation.
    #[test]
    fn tighter_constraints_never_reduce_cost((oracle, pairs, _looseness, capacity) in instance_strategy()) {
        let loose = build_problem(&oracle, &pairs, 1.0, capacity);
        let tight = build_problem(&oracle, &pairs, 0.3, capacity);
        let solve = |p: &SchedulingProblem| BruteForceSolver::default().solve(p, &oracle).cost();
        match (solve(&loose), solve(&tight)) {
            (Some(l), Some(t)) => prop_assert!(t >= l - 1e-6, "tight {t} < loose {l}"),
            (None, Some(_)) => prop_assert!(false, "loose infeasible but tight feasible"),
            _ => {}
        }
    }

    /// Vehicle evaluate/commit round-trips keep the committed route valid
    /// for the vehicle's own problem.
    #[test]
    fn vehicle_commit_keeps_routes_valid((oracle, pairs, looseness, capacity) in instance_strategy()) {
        let constraints = Constraints::new(1_500.0 + looseness * 6_000.0, looseness);
        let mut vehicle = Vehicle::new(
            0,
            0,
            capacity,
            PlannerKind::Kinetic(KineticConfig::slack()),
            0.0,
        );
        for (i, &(s, e)) in pairs.iter().enumerate() {
            let request = TripRequest::new(i as u64, s, e, 0.0, constraints);
            if let Some(proposal) = vehicle.evaluate(&request, &oracle) {
                vehicle.commit(proposal);
            }
        }
        let problem = vehicle.problem();
        if !vehicle.route().is_empty() {
            prop_assert!(problem.is_valid(vehicle.route(), &oracle));
        }
    }
}

//! End-to-end simulations spanning every crate in the workspace.

use ridesharing::prelude::*;

fn workload(trips: usize, seed: u64) -> Workload {
    Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips,
            span_seconds: 2.0 * 3_600.0,
            ..DemandConfig::default()
        },
        seed,
    )
}

fn run(
    w: &Workload,
    oracle: &CachedOracle<'_>,
    planner: PlannerKind,
    vehicles: usize,
    capacity: usize,
    seed: u64,
) -> SimReport {
    let config = SimConfig {
        vehicles,
        capacity,
        planner,
        seed,
        cruise_when_idle: false,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&w.network, oracle, config);
    sim.run(&w.trips)
}

#[test]
fn guarantees_hold_for_every_planner() {
    let w = workload(80, 1);
    let oracle = CachedOracle::without_labels(&w.network);
    let planners = [
        PlannerKind::Solver(SolverKind::BruteForce),
        PlannerKind::Solver(SolverKind::BranchBound),
        PlannerKind::Solver(SolverKind::Insertion),
        PlannerKind::Kinetic(KineticConfig::basic()),
        PlannerKind::Kinetic(KineticConfig::slack()),
        PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
    ];
    for planner in planners {
        let report = run(&w, &oracle, planner, 12, 4, 7);
        assert_eq!(report.requests, 80, "{planner:?}");
        assert!(report.assigned > 0, "{planner:?} never assigned anything");
        assert_eq!(
            report.guarantee_violations, 0,
            "{planner:?} violated a service guarantee"
        );
        // Whatever was delivered stayed within the detour bound on average.
        if report.completed > 0 {
            assert!(report.mean_detour_ratio <= 1.2 + 1e-6, "{planner:?}");
        }
    }
}

#[test]
fn exact_planners_accept_the_same_requests() {
    // Brute force, branch and bound and the basic kinetic tree all compute
    // the same minimum-cost augmented schedule, so dispatch decisions — and
    // therefore the number of assigned requests — must coincide.
    let w = workload(60, 2);
    let oracle = CachedOracle::without_labels(&w.network);
    let a = run(
        &w,
        &oracle,
        PlannerKind::Solver(SolverKind::BruteForce),
        10,
        4,
        3,
    );
    let b = run(
        &w,
        &oracle,
        PlannerKind::Solver(SolverKind::BranchBound),
        10,
        4,
        3,
    );
    let c = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::basic()),
        10,
        4,
        3,
    );
    assert_eq!(a.assigned, b.assigned, "brute force vs branch and bound");
    assert_eq!(a.assigned, c.assigned, "brute force vs kinetic tree");
    assert_eq!(a.rejected, c.rejected);
}

#[test]
fn kinetic_variants_serve_comparable_demand() {
    let w = workload(100, 3);
    let oracle = CachedOracle::without_labels(&w.network);
    let basic = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::basic()),
        10,
        6,
        5,
    );
    let slack = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::slack()),
        10,
        6,
        5,
    );
    let hotspot = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        10,
        6,
        5,
    );
    // Basic and slack are both exact: identical decisions.
    assert_eq!(basic.assigned, slack.assigned);
    // Hotspot is an approximation: it may lose a few assignments but must
    // stay in the same ballpark and keep every guarantee.
    assert_eq!(hotspot.guarantee_violations, 0);
    assert!(
        hotspot.assigned as f64 >= 0.8 * basic.assigned as f64,
        "hotspot lost too much: {} vs {}",
        hotspot.assigned,
        basic.assigned
    );
}

#[test]
fn more_vehicles_never_serve_less_demand() {
    let w = workload(120, 4);
    let oracle = CachedOracle::without_labels(&w.network);
    let small = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::slack()),
        5,
        4,
        9,
    );
    let large = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::slack()),
        25,
        4,
        9,
    );
    assert!(
        large.assigned >= small.assigned,
        "25 vehicles served {} but 5 vehicles served {}",
        large.assigned,
        small.assigned
    );
}

#[test]
fn unlimited_capacity_increases_sharing() {
    let w = workload(150, 5);
    let oracle = CachedOracle::without_labels(&w.network);
    let cap2 = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        6,
        2,
        1,
    );
    let unlimited = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        6,
        usize::MAX,
        1,
    );
    assert!(unlimited.occupancy.fleet_max >= cap2.occupancy.fleet_max);
    assert!(cap2.occupancy.fleet_max <= 2);
    assert!(unlimited.assigned >= cap2.assigned);
    assert_eq!(unlimited.guarantee_violations, 0);
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let w = workload(70, 6);
    let oracle = CachedOracle::without_labels(&w.network);
    let a = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::slack()),
        8,
        4,
        11,
    );
    let b = run(
        &w,
        &oracle,
        PlannerKind::Kinetic(KineticConfig::slack()),
        8,
        4,
        11,
    );
    assert_eq!(a.assigned, b.assigned);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.occupancy.fleet_max, b.occupancy.fleet_max);
    assert!((a.mean_wait_seconds - b.mean_wait_seconds).abs() < 1e-9);
    assert!((a.fleet_distance_km - b.fleet_distance_km).abs() < 1e-9);
}

#[test]
fn dispatcher_spatial_filter_matches_full_scan_outcomes() {
    // With the spatial filter on, the dispatcher may only skip vehicles that
    // could never satisfy the waiting constraint, so the number of accepted
    // requests must be the same as with a full scan.
    let w = workload(50, 7);
    let oracle = CachedOracle::without_labels(&w.network);
    let run_with = |use_filter: bool| {
        let config = SimConfig {
            vehicles: 10,
            capacity: 4,
            planner: PlannerKind::Kinetic(KineticConfig::slack()),
            seed: 21,
            cruise_when_idle: false,
            dispatcher: DispatcherConfig {
                use_spatial_filter: use_filter,
                ..DispatcherConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&w.network, &oracle, config);
        sim.run(&w.trips)
    };
    let filtered = run_with(true);
    let full = run_with(false);
    assert_eq!(filtered.assigned, full.assigned);
    assert!(filtered.mean_candidates <= full.mean_candidates);
}

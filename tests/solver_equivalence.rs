//! Cross-algorithm equivalence: the correctness oracle of the reproduction.
//!
//! Brute force, branch and bound, the MIP formulation and the kinetic tree
//! (basic and slack variants) must all report the same minimum cost on the
//! same scheduling problem; the hotspot variant and the insertion heuristic
//! must stay valid and never beat that optimum.

use ridesharing::prelude::*;
use roadnet::MatrixOracle;

fn grid_oracle(rows: usize, cols: usize, seed: u64) -> MatrixOracle {
    let g = GeneratorConfig {
        kind: NetworkKind::Grid { rows, cols },
        seed,
        ..GeneratorConfig::default()
    }
    .generate();
    MatrixOracle::new(&g)
}

/// Deterministic xorshift for reproducible random problems without pulling
/// RNG seeds through every helper.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_problem(
    oracle: &MatrixOracle,
    seed: u64,
    trips: usize,
    capacity: usize,
    tightness: f64,
) -> SchedulingProblem {
    let n = oracle.node_count() as u64;
    let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
    let mut p = SchedulingProblem::new((rng.next() % n) as u32, 0.0, capacity);
    for t in 0..trips as u64 {
        let pickup = (rng.next() % n) as u32;
        let mut dropoff = (rng.next() % n) as u32;
        if dropoff == pickup {
            dropoff = (dropoff + 1) % n as u32;
        }
        let direct = oracle.dist(pickup, dropoff);
        p.waiting.push(WaitingTrip {
            trip: t,
            pickup,
            dropoff,
            pickup_deadline: 2_000.0 + tightness * (rng.next() % 4_000) as f64,
            max_ride: direct * (1.0 + 0.2 + tightness * 0.5) + 50.0,
        });
    }
    p
}

fn kinetic_best(
    problem: &SchedulingProblem,
    oracle: &MatrixOracle,
    config: KineticConfig,
) -> Option<f64> {
    let mut tree = KineticTree::new(problem.start, problem.now, problem.capacity, config);
    for trip in &problem.waiting {
        match tree.try_insert(*trip, oracle) {
            Ok((t, _)) => tree = t,
            Err(_) => return None,
        }
    }
    tree.best_route().map(|(c, _)| c)
}

#[test]
fn exact_solvers_and_kinetic_tree_agree() {
    let oracle = grid_oracle(6, 6, 44);
    let bf = BruteForceSolver::default();
    let bb = BranchBoundSolver::default();
    let mip = MipScheduleSolver::default();
    let mut compared = 0;
    for seed in 0..25u64 {
        let trips = 1 + (seed % 3) as usize;
        let p = random_problem(&oracle, seed, trips, 4, 0.8);
        let a = bf.solve(&p, &oracle);
        let b = bb.solve(&p, &oracle);
        let c = mip.solve(&p, &oracle);
        match (&a, &b, &c) {
            (
                SolverOutcome::Feasible { cost: ca, .. },
                SolverOutcome::Feasible { cost: cb, .. },
                SolverOutcome::Feasible { cost: cc, .. },
            ) => {
                compared += 1;
                assert!((ca - cb).abs() < 1e-5, "seed {seed}: bf {ca} vs bb {cb}");
                assert!((ca - cc).abs() < 1e-3, "seed {seed}: bf {ca} vs mip {cc}");
                // The kinetic tree, built by inserting the same trips one at
                // a time, reaches the same optimum.
                let basic = kinetic_best(&p, &oracle, KineticConfig::basic());
                let slack = kinetic_best(&p, &oracle, KineticConfig::slack());
                assert!(
                    basic.is_some() && slack.is_some(),
                    "seed {seed}: tree infeasible"
                );
                assert!(
                    (basic.unwrap() - ca).abs() < 1e-5,
                    "seed {seed}: basic tree"
                );
                assert!(
                    (slack.unwrap() - ca).abs() < 1e-5,
                    "seed {seed}: slack tree"
                );
            }
            (SolverOutcome::Infeasible, SolverOutcome::Infeasible, SolverOutcome::Infeasible) => {}
            other => panic!("seed {seed}: feasibility disagreement {other:?}"),
        }
    }
    assert!(
        compared >= 10,
        "too few feasible instances compared: {compared}"
    );
}

#[test]
fn heuristics_never_beat_the_optimum_and_stay_valid() {
    let oracle = grid_oracle(6, 6, 45);
    let bf = BruteForceSolver::default();
    let heuristic = InsertionSolver;
    for seed in 0..20u64 {
        let p = random_problem(&oracle, seed, 3, 4, 1.0);
        let best = match bf.solve(&p, &oracle) {
            SolverOutcome::Feasible { cost, .. } => cost,
            _ => continue,
        };
        if let SolverOutcome::Feasible { cost, schedule } = heuristic.solve(&p, &oracle) {
            assert!(p.is_valid(&schedule, &oracle), "seed {seed}");
            assert!(
                cost >= best - 1e-6,
                "seed {seed}: heuristic beat the optimum"
            );
        }
        if let Some(hotspot) = kinetic_best(&p, &oracle, KineticConfig::hotspot(300.0)) {
            assert!(
                hotspot >= best - 1e-6,
                "seed {seed}: hotspot beat the optimum"
            );
        }
    }
}

#[test]
fn capacity_one_is_respected_by_every_solver() {
    let oracle = grid_oracle(5, 5, 46);
    for seed in 0..10u64 {
        let p = random_problem(&oracle, seed, 2, 1, 1.5);
        for kind in SolverKind::exact() {
            let solver = kind.build();
            if let SolverOutcome::Feasible { schedule, .. } = solver.solve(&p, &oracle) {
                // Validation includes the capacity constraint.
                assert!(
                    p.is_valid(&schedule, &oracle),
                    "seed {seed}: {kind} produced an invalid schedule"
                );
            }
        }
    }
}

#[test]
fn mip_exhaustion_budget_degrades_gracefully() {
    let oracle = grid_oracle(6, 6, 47);
    let p = random_problem(&oracle, 3, 4, 8, 2.0);
    let tiny = MipScheduleSolver::with_budget(1);
    match tiny.solve(&p, &oracle) {
        SolverOutcome::Exhausted | SolverOutcome::Infeasible | SolverOutcome::Feasible { .. } => {}
    }
}

//! Workspace smoke test: a tiny end-to-end simulation through every
//! planner, exercising the whole cross-crate seam (workload generation →
//! road network + oracle → spatial index → matcher → simulator metrics)
//! in tier-1. The paper's central invariant is that accepted requests
//! never violate their waiting-time or detour guarantees, for any
//! matching algorithm.

use ridesharing::prelude::*;

fn planners() -> Vec<(&'static str, PlannerKind)> {
    vec![
        ("brute-force", PlannerKind::Solver(SolverKind::BruteForce)),
        ("branch-bound", PlannerKind::Solver(SolverKind::BranchBound)),
        ("mip", PlannerKind::Solver(SolverKind::Mip)),
        ("insertion", PlannerKind::Solver(SolverKind::Insertion)),
        ("tree-basic", PlannerKind::Kinetic(KineticConfig::basic())),
        ("tree-slack", PlannerKind::Kinetic(KineticConfig::slack())),
        (
            "tree-hotspot",
            PlannerKind::Kinetic(KineticConfig::hotspot(300.0)),
        ),
    ]
}

#[test]
fn every_planner_serves_a_small_city_without_guarantee_violations() {
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 50,
            ..DemandConfig::default()
        },
        42,
    );
    let oracle = CachedOracle::without_labels(&workload.network);

    for (name, planner) in planners() {
        oracle.clear_caches();
        let config = SimConfig {
            vehicles: 10,
            planner,
            seed: 42,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&workload.network, &oracle, config);
        let report = sim.run(&workload.trips);

        assert_eq!(report.requests, 50, "{name}: every request must be seen");
        assert_eq!(
            report.guarantee_violations, 0,
            "{name}: guarantees must never be violated"
        );
        assert!(
            report.assigned > 0,
            "{name}: a 10-vehicle fleet must serve someone out of 50 trips"
        );
        assert_eq!(
            report.assigned + report.rejected,
            report.requests,
            "{name}: every request is either served or rejected"
        );
    }
}

#[test]
fn exact_planners_agree_on_assigned_trip_count() {
    // The three exact matchers explore the same feasible set, so on a
    // deterministic workload they must accept/reject identically.
    let workload = Workload::generate(
        &CityConfig::small(),
        &DemandConfig {
            trips: 30,
            ..DemandConfig::default()
        },
        7,
    );
    let oracle = CachedOracle::without_labels(&workload.network);

    let assigned: Vec<u64> = [
        PlannerKind::Solver(SolverKind::BruteForce),
        PlannerKind::Solver(SolverKind::BranchBound),
        PlannerKind::Kinetic(KineticConfig::slack()),
    ]
    .into_iter()
    .map(|planner| {
        oracle.clear_caches();
        let config = SimConfig {
            vehicles: 8,
            planner,
            seed: 7,
            ..SimConfig::default()
        };
        Simulation::new(&workload.network, &oracle, config)
            .run(&workload.trips)
            .assigned
    })
    .collect();

    assert_eq!(assigned[0], assigned[1], "brute force vs branch and bound");
    assert_eq!(assigned[0], assigned[2], "brute force vs kinetic tree");
}

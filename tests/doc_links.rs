//! Keeps the documentation layer's cross-references live.
//!
//! ARCHITECTURE.md, OPERATIONS.md, PAPER.md and ROADMAP.md form one
//! linked document set: each points into the others and into source
//! files, artifacts and binaries by name. Those references rot silently —
//! a renamed binary or a deleted artifact breaks the runbook without
//! breaking the build — so this test walks every reference the documents
//! make and fails when a target disappears.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

const DOCS: &[&str] = &["ARCHITECTURE.md", "OPERATIONS.md", "PAPER.md", "ROADMAP.md"];

/// Extracts `](target)` markdown-link targets from one document.
fn markdown_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("](") {
        rest = &rest[i + 2..];
        if let Some(end) = rest.find(')') {
            out.push(rest[..end].to_string());
            rest = &rest[end..];
        } else {
            break;
        }
    }
    out
}

#[test]
fn every_markdown_link_target_exists() {
    let root = repo_root();
    let mut missing = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc)).unwrap_or_else(|e| {
            panic!("{doc} must exist at the repository root ({e})");
        });
        for target in markdown_targets(&text) {
            // External URLs and intra-document anchors are out of scope;
            // the test guards file-level references.
            if target.starts_with("http") || target.starts_with('#') {
                continue;
            }
            let path = target.split('#').next().unwrap_or(&target);
            if path.is_empty() {
                continue;
            }
            if !root.join(path).exists() {
                missing.push(format!("{doc} links to {path}, which does not exist"));
            }
        }
    }
    assert!(missing.is_empty(), "dead links:\n{}", missing.join("\n"));
}

#[test]
fn documents_cross_reference_each_other() {
    // The documentation layer's contract: the architecture tour points at
    // the runbook and the paper mapping, the runbook points back at the
    // architecture, and the paper mapping points at the architecture.
    let root = repo_root();
    for (doc, must_mention) in [
        (
            "ARCHITECTURE.md",
            vec!["OPERATIONS.md", "PAPER.md", "ROADMAP.md"],
        ),
        ("OPERATIONS.md", vec!["ARCHITECTURE.md"]),
        ("PAPER.md", vec!["ARCHITECTURE.md"]),
        ("README_or_ROADMAP", vec![]),
    ] {
        if doc == "README_or_ROADMAP" {
            continue;
        }
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        for m in must_mention {
            assert!(
                text.contains(m),
                "{doc} must reference {m} (the doc set is one linked document)"
            );
        }
    }
}

/// References to source files, binaries and artifacts made *by name* in
/// prose (not markdown links) — the ones most likely to rot.
#[test]
fn named_binaries_artifacts_and_sources_exist() {
    let root = repo_root();
    let mut referenced: HashSet<String> = HashSet::new();
    // ROADMAP.md is deliberately absent here: it cites file paths inside
    // *related external repositories* as idiom references, which are not
    // resolvable in this tree. Its markdown links are still checked above.
    for doc in ["ARCHITECTURE.md", "OPERATIONS.md", "PAPER.md"] {
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        // `path`-style inline-code references that look like files.
        for piece in text.split('`').skip(1).step_by(2) {
            let p = piece.trim();
            if (p.contains('/') && Path::new(p).extension().is_some()
                || p.starts_with("BENCH_") && p.ends_with(".json"))
                && !p.contains(' ')
                && !p.contains('<')
                && !p.contains('$')
                && !p.contains('*')
            {
                referenced.insert(p.trim_start_matches("./").to_string());
            }
        }
    }
    let mut missing = Vec::new();
    for r in &referenced {
        // Generated-at-runtime paths live under target/; committed
        // artifacts and sources must exist in the tree.
        if r.starts_with("target/") || r.starts_with("BENCH_dispatch") {
            continue;
        }
        if !root.join(r).exists() {
            missing.push(r.clone());
        }
    }
    let mut missing_sorted = missing.clone();
    missing_sorted.sort();
    assert!(
        missing.is_empty(),
        "docs reference files that do not exist:\n{}",
        missing_sorted.join("\n")
    );

    // The serve artifact and the runbook's headline binaries must be
    // referenced somewhere — losing the reference means the docs no
    // longer describe the system CI gates.
    let all: String = DOCS
        .iter()
        .map(|d| std::fs::read_to_string(root.join(d)).unwrap())
        .collect();
    for needle in [
        "BENCH_serve.json",
        "BENCH_replay.json",
        "BENCH_chaos.json",
        "BENCH_shard.json",
        "BENCH_lint.json",
        "rideshare-lint",
        "lint:allow",
        "serve_sweep",
        "paper_replay",
        "chaos_smoke",
        "shard_smoke",
        "ShardedSimulation",
        "PartitionSpec",
        "ShardBroker",
        "--fault-plan",
        "--recover-dir",
        "RIDESHARE_LABEL_CACHE",
    ] {
        assert!(
            all.contains(needle),
            "documentation set no longer mentions {needle}"
        );
    }
}
